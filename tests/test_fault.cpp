// Fault-injection tests: lineage-based recovery of lost cached partitions
// (the "resilient" in RDD), injected task failures with bounded retries,
// executor blacklisting, speculative execution, and memory-pressure LRU
// eviction.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "datagen/benchmarks.h"
#include "engine/rdd.h"
#include "fim/yafim.h"

namespace yafim::engine {
namespace {

Context::Options small_cluster() {
  Context::Options opts;
  opts.cluster = sim::ClusterConfig::with_nodes(4);
  opts.host_threads = 4;
  // Tests below assert exact recovery counters; pin injection off so they
  // hold unchanged when the whole binary runs under the CI fault matrix.
  opts.fault = FaultProfile{};
  return opts;
}

/// Profile with explicit knobs (ignores the environment for determinism).
Context::Options faulty_cluster(double task_failure_p, double straggler_p,
                                u64 seed) {
  auto opts = small_cluster();
  opts.fault.seed = seed;
  opts.fault.task_failure_p = task_failure_p;
  opts.fault.straggler_p = straggler_p;
  return opts;
}

std::vector<int> iota(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(Fault, LostPartitionIsRecomputedFromLineage) {
  Context ctx(small_cluster());
  auto rdd =
      ctx.parallelize(iota(100), 8).map([](const int& x) { return x * 3; });
  rdd.persist();
  const auto before = rdd.collect();

  ASSERT_TRUE(ctx.fault_injector().fail_partition(rdd.id(), 2));
  EXPECT_EQ(ctx.fault_injector().recomputations(), 0u);

  const auto after = rdd.collect();
  EXPECT_EQ(before, after);
  EXPECT_EQ(ctx.fault_injector().recomputations(), 1u);
}

TEST(Fault, FailPartitionOnUnknownRddReturnsFalse) {
  Context ctx(small_cluster());
  EXPECT_FALSE(ctx.fault_injector().fail_partition(12345, 0));
}

TEST(Fault, FailPartitionOnUncachedRddIsNoop) {
  Context ctx(small_cluster());
  auto rdd = ctx.parallelize(iota(10), 2).map([](const int& x) { return x; });
  rdd.persist();
  // Not computed yet: nothing cached to drop.
  EXPECT_FALSE(ctx.fault_injector().fail_partition(rdd.id(), 0));
}

TEST(Fault, KillExecutorDropsItsPartitions) {
  Context ctx(small_cluster());  // 4 nodes
  auto rdd = ctx.parallelize(iota(1000), 8).map([](const int& x) {
    return x + 1;
  });
  rdd.persist();
  const auto before = rdd.collect();

  // Node 1 hosts partitions 1 and 5 (pid % nodes).
  const u64 lost = ctx.fault_injector().kill_executor(1);
  EXPECT_EQ(lost, 2u);

  EXPECT_EQ(rdd.collect(), before);
  EXPECT_EQ(ctx.fault_injector().recomputations(), 2u);
}

TEST(Fault, KillExecutorOutOfRangeAborts) {
  Context ctx(small_cluster());
  EXPECT_DEATH(ctx.fault_injector().kill_executor(99), "no such node");
}

TEST(Fault, RecoveryThroughDeepLineage) {
  Context ctx(small_cluster());
  auto base = ctx.parallelize(iota(100), 4);
  auto mid = base.map([](const int& x) { return x * 2; });
  mid.persist();
  auto top = mid.filter([](const int& x) { return x % 4 == 0; })
                 .map([](const int& x) { return x + 1; });
  const auto before = top.collect();

  ctx.fault_injector().kill_executor(0);
  const auto after = top.collect();
  EXPECT_EQ(before, after);
  EXPECT_GT(ctx.fault_injector().recomputations(), 0u);
}

TEST(Fault, ResultsIdenticalUnderRepeatedFailures) {
  Context ctx(small_cluster());
  auto pairs = ctx.parallelize(iota(500), 8).map([](const int& x) {
    return std::pair<int, u64>(x % 7, 1);
  });
  pairs.persist();
  auto counts_before =
      pairs.reduce_by_key([](u64 a, u64 b) { return a + b; })
          .collect_as_map();
  for (u32 node = 0; node < 4; ++node) {
    ctx.fault_injector().kill_executor(node);
    auto counts_after =
        pairs.reduce_by_key([](u64 a, u64 b) { return a + b; })
            .collect_as_map();
    EXPECT_EQ(counts_before, counts_after) << "after killing node " << node;
  }
}

TEST(Fault, DroppedCacheHolderUnregisters) {
  Context ctx(small_cluster());
  u32 id;
  {
    auto rdd =
        ctx.parallelize(iota(10), 2).map([](const int& x) { return x; });
    rdd.persist();
    rdd.collect();
    id = rdd.id();
    ASSERT_TRUE(ctx.fault_injector().fail_partition(id, 0));
  }
  // The RDD is destroyed; the injector must not touch freed memory.
  EXPECT_FALSE(ctx.fault_injector().fail_partition(id, 0));
}

TEST(Fault, KillExecutorRacesWithCollectAndDestruction) {
  // kill_executor walks every registered cache holder; racing it against
  // collect() (cache fills) and ~Node (unregistration) used to be a
  // use-after-free. Run under TSan in CI.
  Context ctx(small_cluster());
  for (int round = 0; round < 25; ++round) {
    std::atomic<bool> started{false};
    std::thread killer;
    {
      auto rdd = ctx.parallelize(iota(200), 8).map([](const int& x) {
        return x + 1;
      });
      rdd.persist();
      rdd.collect();
      killer = std::thread([&] {
        started.store(true);
        for (u32 node = 0; node < 4; ++node) {
          ctx.fault_injector().kill_executor(node);
        }
      });
      while (!started.load()) std::this_thread::yield();
      rdd.collect();
    }  // ~Node unregisters while kills may still be in flight
    killer.join();
  }
}

TEST(FaultInjection, RetriesRecoverAndResultsMatchFaultFree) {
  Context clean(small_cluster());
  const auto expected = clean.parallelize(iota(500), 16)
                            .map([](const int& x) { return x * 7; })
                            .collect();

  Context ctx(faulty_cluster(/*task_failure_p=*/0.2, /*straggler_p=*/0.0,
                             /*seed=*/42));
  const auto got = ctx.parallelize(iota(500), 16)
                       .map([](const int& x) { return x * 7; })
                       .collect();
  EXPECT_EQ(got, expected);
  const FaultInjector& inj = ctx.fault_injector();
  EXPECT_GT(inj.task_failures(), 0u);
  EXPECT_GT(inj.task_retries(), 0u);
  EXPECT_GE(inj.task_failures(), inj.task_retries());
}

TEST(FaultInjection, ExhaustedAttemptBudgetThrowsStageFailed) {
  auto opts = faulty_cluster(/*task_failure_p=*/1.0, /*straggler_p=*/0.0,
                             /*seed=*/1);
  opts.fault.blacklist_after = 0;  // no healthy node to escape to anyway
  Context ctx(opts);
  auto rdd = ctx.parallelize(iota(40), 4).map([](const int& x) { return x; });
  try {
    rdd.collect("doomed");
    FAIL() << "expected StageFailedError";
  } catch (const StageFailedError& e) {
    EXPECT_EQ(e.stage(), "doomed");
    EXPECT_EQ(e.failed_tasks(), 4u);  // every task exhausted its budget
    EXPECT_EQ(e.stage_attempts(), 2u);
    EXPECT_GT(ctx.fault_injector().stage_retries(), 0u);
  }
}

TEST(FaultInjection, SickNodeGetsBlacklistedAndWorkContinues) {
  auto opts = faulty_cluster(/*task_failure_p=*/0.02, /*straggler_p=*/0.0,
                             /*seed=*/3);
  opts.fault.node_failure_bias = {50.0};  // node 0 fails every attempt
  opts.fault.blacklist_after = 2;
  Context ctx(opts);
  const auto got = ctx.parallelize(iota(400), 16)
                       .map([](const int& x) { return x + 1; })
                       .collect();
  std::vector<int> expected(400);
  std::iota(expected.begin(), expected.end(), 1);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(ctx.fault_injector().blacklisted_nodes(), 1u);
  EXPECT_EQ(ctx.fault_injector().live_nodes(), 3u);
  // Placement now avoids node 0: its home tasks run on the next node.
  EXPECT_EQ(ctx.fault_injector().node_of(0), 1u);
  EXPECT_EQ(ctx.fault_injector().node_of(3), 3u);
}

TEST(FaultInjection, StragglersGetSpeculativeCopies) {
  Context ctx(faulty_cluster(/*task_failure_p=*/0.0, /*straggler_p=*/0.25,
                             /*seed=*/5));
  const auto got = ctx.parallelize(iota(1000), 16)
                       .map([](const int& x) { return x * 2; })
                       .collect();
  EXPECT_EQ(got.size(), 1000u);
  const FaultInjector& inj = ctx.fault_injector();
  EXPECT_GT(inj.stragglers(), 0u);
  EXPECT_GT(inj.speculative_launches(), 0u);
  // A straggler's copy re-draws the straggler odds, so most copies win.
  EXPECT_GT(inj.speculative_wins(), 0u);
  EXPECT_EQ(inj.speculative_wins() + inj.speculative_losses(),
            inj.speculative_launches());
}

TEST(FaultInjection, InjectionDrawsAreReproducible) {
  const auto opts = faulty_cluster(0.1, 0.1, 77);
  Context a(opts), b(opts);
  auto run = [](Context& ctx) {
    return ctx.parallelize(iota(800), 24)
        .map([](const int& x) { return std::pair<int, u64>(x % 13, 1); })
        .reduce_by_key([](u64 l, u64 r) { return l + r; })
        .collect_as_map();
  };
  EXPECT_EQ(run(a), run(b));
  EXPECT_EQ(a.fault_injector().task_failures(),
            b.fault_injector().task_failures());
  EXPECT_EQ(a.fault_injector().task_retries(),
            b.fault_injector().task_retries());
  EXPECT_EQ(a.fault_injector().stragglers(), b.fault_injector().stragglers());
  EXPECT_EQ(a.fault_injector().speculative_launches(),
            b.fault_injector().speculative_launches());
  EXPECT_EQ(a.fault_injector().speculative_wins(),
            b.fault_injector().speculative_wins());
  // Priced simulated time is part of the replay contract too.
  EXPECT_DOUBLE_EQ(a.sim_seconds(), b.sim_seconds());
}

// --- memory-pressure cache eviction ------------------------------------

TEST(CacheBudget, EvictsUnderPressureAndDegradesToRecompute) {
  auto opts = small_cluster();
  // 8 partitions of 250 ints (~1008 B each) over 4 nodes: two partitions
  // per node, but budget fits only one -- every node must evict.
  opts.cluster.executor_cache_bytes = 1500;
  Context ctx(opts);
  auto rdd = ctx.parallelize(iota(2000), 8).map([](const int& x) {
    return x + 1;
  });
  rdd.persist();
  const auto before = rdd.collect();
  const FaultInjector& inj = ctx.fault_injector();
  EXPECT_GE(inj.cache_evictions(), 4u);
  EXPECT_GT(inj.cache_evicted_bytes(), 0u);

  // Results survive the pressure; evicted partitions recompute by lineage.
  EXPECT_EQ(rdd.collect(), before);
  EXPECT_GT(inj.recomputations(), 0u);
}

TEST(CacheBudget, UnboundedBudgetNeverEvicts) {
  Context ctx(small_cluster());  // executor_cache_bytes = 0 (unbounded)
  auto rdd = ctx.parallelize(iota(2000), 8).map([](const int& x) {
    return x + 1;
  });
  rdd.persist();
  rdd.collect();
  rdd.collect();
  EXPECT_EQ(ctx.fault_injector().cache_evictions(), 0u);
  EXPECT_EQ(ctx.fault_injector().recomputations(), 0u);
}

TEST(CacheBudget, LruOrderIsRespected) {
  struct FakeHolder final : CacheHolder {
    std::vector<u32> dropped;
    explicit FakeHolder(u32 id) : CacheHolder(id, 16, &FakeHolder::drop) {}
    static bool drop(CacheHolder* holder, u32 partition) {
      static_cast<FakeHolder*>(holder)->dropped.push_back(partition);
      return true;
    }
  };

  sim::ClusterConfig cluster = sim::ClusterConfig::with_nodes(1);
  cluster.executor_cache_bytes = 100;
  FaultInjector inj(cluster, FaultProfile{});
  FakeHolder holder(7);
  inj.register_holder(&holder);

  inj.note_cache_insert(7, 0, 40);
  inj.note_cache_insert(7, 1, 40);
  inj.note_cache_hit(7, 0);        // partition 1 is now the coldest
  inj.note_cache_insert(7, 2, 40);  // 120 B > 100 B: evict one
  ASSERT_EQ(holder.dropped, (std::vector<u32>{1}));
  EXPECT_EQ(inj.cache_evictions(), 1u);
  EXPECT_EQ(inj.cache_evicted_bytes(), 40u);

  inj.unregister_holder(&holder);
  // Everything the departed holder cached is forgotten: inserts by another
  // holder fit without evicting.
  FakeHolder other(8);
  inj.register_holder(&other);
  inj.note_cache_insert(8, 0, 90);
  EXPECT_TRUE(other.dropped.empty());
  inj.unregister_holder(&other);
}

// --- cached-partition corruption ----------------------------------------

TEST(Corruption, CachedCorruptionDegradesToLineageRecompute) {
  auto opts = small_cluster();
  opts.fault.corrupt.seed = 11;
  opts.fault.corrupt.cached_p = 0.3;
  Context ctx(opts);
  auto rdd = ctx.parallelize(iota(200), 8).map([](const int& x) {
    return x * 2;
  });
  rdd.persist();
  const auto before = rdd.collect();  // fills the cache

  // Every later collect serves from cache; ~30% of hits draw corrupt,
  // discard the partition and recompute it from lineage -- the caller
  // always sees pristine data.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rdd.collect(), before) << "iteration " << i;
  }
  const FaultInjector& inj = ctx.fault_injector();
  EXPECT_GT(inj.cache_corruptions(), 0u);
  // Every corrupt cached partition was repaired by recomputation.
  EXPECT_GE(inj.recomputations(), inj.cache_corruptions());
}

TEST(Corruption, CachedDrawsAreReproducible) {
  auto opts = small_cluster();
  opts.fault.corrupt.seed = 11;
  opts.fault.corrupt.cached_p = 0.3;
  auto run = [&] {
    Context ctx(opts);
    auto rdd = ctx.parallelize(iota(200), 8).map([](const int& x) {
      return x + 5;
    });
    rdd.persist();
    for (int i = 0; i < 10; ++i) (void)rdd.collect();
    return ctx.fault_injector().cache_corruptions();
  };
  const u64 a = run();
  EXPECT_EQ(a, run());
  EXPECT_GT(a, 0u);
}

TEST(Corruption, YafimIdenticalUnderDataCorruption) {
  // The acceptance claim: under block + cached-partition corruption at a
  // rate that demonstrably fires, mining returns exactly the clean answer
  // and every injected flip is accounted for as detected.
  const auto bench = datagen::make_mushroom(/*scale=*/0.1);
  fim::YafimOptions yopt;
  yopt.min_support = bench.paper_min_support;

  Context clean_ctx(small_cluster());
  simfs::SimFS clean_fs(clean_ctx.cluster(), sim::CorruptionProfile{});
  const auto reference = fim::yafim_mine(clean_ctx, clean_fs, bench.db, yopt);

  auto opts = small_cluster();
  opts.cluster.hdfs_block_bytes = 1024;  // many blocks -> many draws
  opts.fault.corrupt.seed = 13;
  opts.fault.corrupt.block_p = 0.02;
  opts.fault.corrupt.cached_p = 0.05;
  Context ctx(opts);
  simfs::SimFS fs(ctx.cluster(), opts.fault.corrupt);
  const auto mined = fim::yafim_mine(ctx, fs, bench.db, yopt);

  EXPECT_TRUE(reference.itemsets.same_itemsets(mined.itemsets));
  const auto integrity = fs.integrity();
  EXPECT_GT(integrity.corrupt_injected + ctx.fault_injector().cache_corruptions(),
            0u)
      << "rate/seed chosen so injection actually fires";
  EXPECT_EQ(integrity.corrupt_detected, integrity.corrupt_injected);
  EXPECT_EQ(integrity.unrecoverable, 0u);
  EXPECT_EQ(integrity.repaired_by_replica, integrity.corrupt_detected);
}

// --- end-to-end: YAFIM under combined injection -------------------------

TEST(FaultInjection, YafimMinesIdenticalItemsetsUnderInjection) {
  const auto bench = datagen::make_mushroom(/*scale=*/0.1);
  fim::YafimOptions yopt;
  yopt.min_support = bench.paper_min_support;

  Context clean_ctx(small_cluster());
  simfs::SimFS clean_fs(clean_ctx.cluster());
  const auto reference = fim::yafim_mine(clean_ctx, clean_fs, bench.db, yopt);

  auto run_faulty = [&](Context& ctx) {
    simfs::SimFS fs(ctx.cluster());
    return fim::yafim_mine(ctx, fs, bench.db, yopt);
  };
  auto opts = faulty_cluster(/*task_failure_p=*/0.05, /*straggler_p=*/0.05,
                             /*seed=*/9);
  opts.cluster.executor_cache_bytes = 4096;  // force cache pressure

  Context a(opts);
  const auto mined_a = run_faulty(a);
  EXPECT_TRUE(reference.itemsets.same_itemsets(mined_a.itemsets));
  EXPECT_GT(a.fault_injector().task_retries(), 0u);
  EXPECT_GT(a.fault_injector().stragglers(), 0u);
  EXPECT_GT(a.fault_injector().speculative_wins(), 0u);
  EXPECT_GT(a.fault_injector().cache_evictions(), 0u);

  // Same profile, fresh context: bit-identical itemsets AND identical
  // recovery counters (the injection draws are pure hashes).
  Context b(opts);
  const auto mined_b = run_faulty(b);
  EXPECT_TRUE(mined_a.itemsets.same_itemsets(mined_b.itemsets));
  EXPECT_EQ(a.fault_injector().task_failures(),
            b.fault_injector().task_failures());
  EXPECT_EQ(a.fault_injector().task_retries(),
            b.fault_injector().task_retries());
  EXPECT_EQ(a.fault_injector().stragglers(), b.fault_injector().stragglers());
  EXPECT_EQ(a.fault_injector().speculative_launches(),
            b.fault_injector().speculative_launches());
}

// ---- strict env parsing -------------------------------------------------
// A typo'd YAFIM_FAULT_* value used to atof/strtoull to zero, silently
// disabling the axis: the injection lane would pass CI while testing
// nothing. Every malformed value must now die with a structured one-liner.

TEST(FaultEnvDeathTest, MalformedValuesAreRejectedPerAxis) {
  struct Case {
    const char* var;
    const char* value;
  };
  const Case cases[] = {
      {"YAFIM_FAULT_SEED", "12q"},
      {"YAFIM_FAULT_TASK_FAILURE_P", "banana"},
      {"YAFIM_FAULT_TASK_FAILURE_P", "-0.1"},
      {"YAFIM_FAULT_TASK_FAILURE_P", "1.5"},
      {"YAFIM_FAULT_STRAGGLER_P", "2"},
      {"YAFIM_FAULT_STRAGGLER_SLOWDOWN", "-3"},
      {"YAFIM_FAULT_MAX_TASK_ATTEMPTS", "three"},
      {"YAFIM_FAULT_MAX_STAGE_ATTEMPTS", "-1"},
      {"YAFIM_FAULT_BLACKLIST_AFTER", "2.5"},
      {"YAFIM_FAULT_SPECULATION_MULTIPLE", "fast"},
      {"YAFIM_FAULT_MEM_SHRINK_PASS", "-2"},
      {"YAFIM_FAULT_MEM_SHRINK_FACTOR", "1.5"},
      {"YAFIM_FAULT_MEM_SHRINK_FACTOR", "lots"},
      {"YAFIM_FAULT_MEM_SHRINK_NODE", "node1"},
      {"YAFIM_FAULT_STREAM_KILL_BATCH", "x9"},
      {"YAFIM_FAULT_STREAM_KILL_PHASE", "-1"},
      {"YAFIM_FAULT_STREAM_SEED", "12abc"},
      {"YAFIM_FAULT_CORRUPT_BLOCK_P", "often"},
      {"YAFIM_FAULT_CORRUPT_CACHED_P", "1.01"},
  };
  for (const Case& c : cases) {
    ASSERT_EQ(setenv(c.var, c.value, 1), 0);
    EXPECT_DEATH((void)FaultProfile::from_env(), "rejected")
        << c.var << "=" << c.value;
    unsetenv(c.var);
  }
}

TEST(FaultEnv, WellFormedValuesStillParse) {
  ASSERT_EQ(setenv("YAFIM_FAULT_TASK_FAILURE_P", "0.25", 1), 0);
  ASSERT_EQ(setenv("YAFIM_FAULT_STREAM_KILL_BATCH", "7", 1), 0);
  ASSERT_EQ(setenv("YAFIM_FAULT_STREAM_KILL_PHASE", "3", 1), 0);
  ASSERT_EQ(setenv("YAFIM_FAULT_STREAM_SEED", "99", 1), 0);
  const FaultProfile p = FaultProfile::from_env();
  EXPECT_DOUBLE_EQ(p.task_failure_p, 0.25);
  EXPECT_EQ(p.stream_kill_batch, 7u);
  EXPECT_EQ(p.stream_kill_phase, 3u);
  EXPECT_EQ(p.stream_seed, 99u);
  unsetenv("YAFIM_FAULT_TASK_FAILURE_P");
  unsetenv("YAFIM_FAULT_STREAM_KILL_BATCH");
  unsetenv("YAFIM_FAULT_STREAM_KILL_PHASE");
  unsetenv("YAFIM_FAULT_STREAM_SEED");
}

}  // namespace
}  // namespace yafim::engine
