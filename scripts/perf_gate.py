#!/usr/bin/env python3
"""Count-mode performance gate for CI.

Compares a fresh BENCH_countmode.json (bench_ablation --json output) against
the checked-in baseline (bench/baselines/BENCH_countmode_baseline.json,
generated at the same --scale as the CI run) and fails on regression.

Five checks, tuned to what each quantity can promise:

1. intra-run sim:   the fast counting modes (candidate_id x=1,
                    vertical_bitmap x=2) must price their pass>=2 counting
                    stages no worse than the paper-faithful itemset-keyed
                    path (x=0) in *simulated* seconds. Sim seconds are
                    bit-deterministic, so the tolerance only absorbs
                    float-accumulation noise.
2. baseline sim:    each mode's counting sim seconds must not exceed the
                    baseline's for the same dataset+mode. Deterministic,
                    same tight tolerance. Catches absolute cost-model
                    regressions the intra-run ratio would hide (e.g. every
                    mode getting uniformly slower).
3. host speedup:    counting *host* wall-clock varies with the runner, so
                    absolute seconds are not comparable across machines.
                    What is stable is the speedup ratio faithful/mode
                    within one run. Each fast mode's current speedup must
                    stay above the baseline speedup times (1 - band).
4. streaming:       the steady-state micro-batch latency (mean simulated
                    seconds over the last quartile of batches in the
                    'stream_batch_sim_s:*' series) must (a) stay under the
                    ingest interval ('stream_interval_s:*') -- a stream
                    that cannot keep up with its own ingest rate is a
                    functional regression regardless of the baseline --
                    and (b) not exceed the baseline steady-state latency
                    beyond the deterministic sim tolerance.
5. approx:          the Toivonen-sampling grid ('approx_*:<dataset>'
                    series) is seeded and fully deterministic, so all
                    three quantities gate tight: simulated seconds per
                    config within the sim tolerance of the baseline,
                    recall never below the baseline's, and the exactness
                    certificate never lost (an x that was exact=1 in the
                    baseline must stay 1).
6. detsan:          the determinism sanitizer ('detsan_sim_s:<dataset>',
                    x=0 off / x=1 on at the default 1/16 sample rate) must
                    keep its replay overhead within 10% of the
                    detsan-off run in simulated seconds (intra-run, the
                    acceptance bound from the DetSan design), and the
                    detsan-on sim seconds must not exceed the baseline's
                    beyond the deterministic sim tolerance.

Usage:
  perf_gate.py CURRENT.json BASELINE.json [--sim-tol 1.02] [--ratio-band 0.5]
"""

import argparse
import json
import sys

MODES = {1: "candidate_id", 2: "vertical_bitmap"}


def fail(message):
    """Gate misconfiguration: one clear line on stderr, exit 1, no traceback.

    Distinct from a perf regression (which prints the failing checks): these
    are setup errors -- a missing baseline file, a truncated JSON, a series
    or mode key that is not there -- and the message names the offending
    path/key so the fix is obvious from the CI log alone.
    """
    print("perf gate: error:", message, file=sys.stderr)
    sys.exit(1)


def load_json(path, role):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        fail(f"{role} file not found: {path}"
             + (" (regenerate it with bench_ablation --json and check it in)"
                if role == "baseline" else ""))
    except json.JSONDecodeError as e:
        fail(f"{role} file {path} is not valid JSON: {e}")


def series_by_dataset(doc, prefix, path):
    """{dataset: {x: y}} for every series named '<prefix>:<dataset>'."""
    series = doc.get("series")
    if not isinstance(series, dict):
        fail(f"{path}: no 'series' section (not a bench_ablation --json "
             "output?)")
    out = {}
    for name, points in series.items():
        if not name.startswith(prefix + ":"):
            continue
        dataset = name.split(":", 1)[1]
        out[dataset] = {int(x): y for x, y in points}
    return out


def steady_batch_seconds(points):
    """Mean y over the last quartile of batches, by batch index.

    Mirrors StreamResult::steady_batch_seconds (src/stream/miner.cpp): the
    last max(1, n//4) batches, so warm-up batches (frontier still filling,
    backpressure still widening) do not dominate the figure.
    """
    ys = [y for _, y in sorted(points.items())]
    tail = ys[-max(1, len(ys) // 4):]
    return sum(tail) / len(tail)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="fresh BENCH_countmode.json")
    parser.add_argument("baseline", help="checked-in baseline json")
    parser.add_argument(
        "--sim-tol", type=float, default=1.02,
        help="multiplicative tolerance for deterministic sim seconds")
    parser.add_argument(
        "--ratio-band", type=float, default=0.5,
        help="host speedup may shrink to (1 - band) of the baseline's "
             "before the gate fails (absorbs runner speed variance)")
    args = parser.parse_args()

    current = load_json(args.current, "current")
    baseline = load_json(args.baseline, "baseline")

    cur_sim = series_by_dataset(current, "countmode_sim_s", args.current)
    cur_host = series_by_dataset(current, "countmode_host_s", args.current)
    base_sim = series_by_dataset(baseline, "countmode_sim_s", args.baseline)
    base_host = series_by_dataset(baseline, "countmode_host_s", args.baseline)

    if not cur_sim:
        fail(f"{args.current}: no 'countmode_sim_s:*' series")
    if not base_sim:
        fail(f"{args.baseline}: no 'countmode_sim_s:*' series")
    missing = sorted(set(base_sim) - set(cur_sim))
    if missing:
        print("FAIL: datasets missing from current run:", ", ".join(missing))
        return 1

    failures = []

    def check(ok, line):
        print(("ok   " if ok else "FAIL ") + line)
        if not ok:
            failures.append(line)

    for dataset in sorted(cur_sim):
        sim, host = cur_sim[dataset], cur_host.get(dataset, {})
        if 0 not in sim:
            fail(f"{args.current}: series 'countmode_sim_s:{dataset}' has no "
                 "x=0 (itemset_key) point to compare against")
        for x, mode in MODES.items():
            if x not in sim:
                failures.append(f"{dataset}: mode {mode} missing from run")
                continue
            # 1. intra-run: the fast path must actually be the fast path.
            check(sim[x] <= sim[0] * args.sim_tol,
                  f"{dataset} {mode}: counting sim {sim[x]:.2f}s vs "
                  f"faithful {sim[0]:.2f}s (tol x{args.sim_tol})")

        if dataset not in base_sim:
            print(f"note {dataset}: not in baseline, intra-run checks only")
            continue
        bsim, bhost = base_sim[dataset], base_host.get(dataset, {})
        for x in sorted(sim):
            mode = MODES.get(x, "itemset_key")
            if x not in bsim:
                fail(f"{args.baseline}: series 'countmode_sim_s:{dataset}' "
                     f"has no x={x} ({mode}) point -- regenerate the "
                     "baseline at the current mode set")
            # 2. deterministic sim seconds vs baseline, absolute.
            check(sim[x] <= bsim[x] * args.sim_tol,
                  f"{dataset} {mode}: counting sim {sim[x]:.2f}s vs "
                  f"baseline {bsim[x]:.2f}s (tol x{args.sim_tol})")
        for x, mode in MODES.items():
            if not (0 in host and 0 in bhost and x in host and x in bhost
                    and host[0] > 0 and bhost[0] > 0 and host[x] > 0
                    and bhost[x] > 0):
                continue
            # 3. host speedup ratio vs baseline, banded.
            cur_ratio = host[0] / host[x]
            base_ratio = bhost[0] / bhost[x]
            floor = base_ratio * (1.0 - args.ratio_band)
            check(cur_ratio >= floor,
                  f"{dataset} {mode}: host speedup {cur_ratio:.2f}x vs "
                  f"baseline {base_ratio:.2f}x (floor {floor:.2f}x)")

    # 4. streaming steady-state latency gate.
    cur_stream = series_by_dataset(current, "stream_batch_sim_s",
                                   args.current)
    cur_interval = series_by_dataset(current, "stream_interval_s",
                                     args.current)
    base_stream = series_by_dataset(baseline, "stream_batch_sim_s",
                                    args.baseline)
    if base_stream and not cur_stream:
        fail(f"{args.current}: baseline has 'stream_batch_sim_s:*' series "
             "but the current run does not (bench_ablation too old?)")
    for dataset in sorted(cur_stream):
        steady = steady_batch_seconds(cur_stream[dataset])
        interval = cur_interval.get(dataset, {}).get(0)
        if interval is None:
            fail(f"{args.current}: 'stream_batch_sim_s:{dataset}' has no "
                 f"matching 'stream_interval_s:{dataset}' point")
        check(steady <= interval,
              f"{dataset} stream: steady batch sim {steady:.3f}s vs ingest "
              f"interval {interval:.2f}s (must keep up)")
        if dataset not in base_stream:
            print(f"note {dataset} stream: not in baseline, "
                  "keep-up check only")
            continue
        base_steady = steady_batch_seconds(base_stream[dataset])
        check(steady <= base_steady * args.sim_tol,
              f"{dataset} stream: steady batch sim {steady:.3f}s vs "
              f"baseline {base_steady:.3f}s (tol x{args.sim_tol})")

    # 5. approximate-mining (Toivonen sampling) gate.
    cur_asim = series_by_dataset(current, "approx_sim_s", args.current)
    cur_arec = series_by_dataset(current, "approx_recall", args.current)
    cur_aex = series_by_dataset(current, "approx_exact", args.current)
    base_asim = series_by_dataset(baseline, "approx_sim_s", args.baseline)
    base_arec = series_by_dataset(baseline, "approx_recall", args.baseline)
    base_aex = series_by_dataset(baseline, "approx_exact", args.baseline)
    if base_asim and not cur_asim:
        fail(f"{args.current}: baseline has 'approx_sim_s:*' series but the "
             "current run does not (bench_ablation too old?)")
    for dataset in sorted(cur_asim):
        sim = cur_asim[dataset]
        if dataset not in base_asim:
            print(f"note {dataset} approx: not in baseline, skipped")
            continue
        bsim = base_asim[dataset]
        for x in sorted(sim):
            if x not in bsim:
                fail(f"{args.baseline}: series 'approx_sim_s:{dataset}' has "
                     f"no x={x} point -- regenerate the baseline at the "
                     "current sampling-config grid")
            check(sim[x] <= bsim[x] * args.sim_tol,
                  f"{dataset} approx x={x}: sim {sim[x]:.2f}s vs baseline "
                  f"{bsim[x]:.2f}s (tol x{args.sim_tol})")
        rec = cur_arec.get(dataset, {})
        brec = base_arec.get(dataset, {})
        for x in sorted(rec):
            if x not in brec:
                continue
            # Seeded + deterministic: recall must not drop at all.
            check(rec[x] >= brec[x] - 1e-9,
                  f"{dataset} approx x={x}: recall {rec[x]:.4f} vs baseline "
                  f"{brec[x]:.4f} (must not drop)")
        ex = cur_aex.get(dataset, {})
        bex = base_aex.get(dataset, {})
        for x in sorted(ex):
            if x not in bex:
                continue
            check(ex[x] >= bex[x] - 1e-9,
                  f"{dataset} approx x={x}: exact={ex[x]:.0f} vs baseline "
                  f"exact={bex[x]:.0f} (certificate must not be lost)")

    # 6. determinism-sanitizer replay overhead gate.
    cur_ds = series_by_dataset(current, "detsan_sim_s", args.current)
    base_ds = series_by_dataset(baseline, "detsan_sim_s", args.baseline)
    if base_ds and not cur_ds:
        fail(f"{args.current}: baseline has 'detsan_sim_s:*' series but the "
             "current run does not (bench_ablation too old?)")
    for dataset in sorted(cur_ds):
        ds = cur_ds[dataset]
        if 0 not in ds or 1 not in ds:
            fail(f"{args.current}: series 'detsan_sim_s:{dataset}' needs "
                 "both x=0 (off) and x=1 (on) points")
        # Intra-run: replay overhead is the acceptance bound, not a drift
        # band -- sim seconds are deterministic, so 1.10 is exact.
        check(ds[1] <= ds[0] * 1.10,
              f"{dataset} detsan: on {ds[1]:.2f}s vs off {ds[0]:.2f}s "
              "(replay overhead must stay within x1.10)")
        if dataset not in base_ds:
            print(f"note {dataset} detsan: not in baseline, "
                  "overhead check only")
            continue
        bds = base_ds[dataset]
        if 1 not in bds:
            fail(f"{args.baseline}: series 'detsan_sim_s:{dataset}' has no "
                 "x=1 point -- regenerate the baseline")
        check(ds[1] <= bds[1] * args.sim_tol,
              f"{dataset} detsan: on sim {ds[1]:.2f}s vs baseline "
              f"{bds[1]:.2f}s (tol x{args.sim_tol})")

    if failures:
        print(f"\nperf gate: {len(failures)} regression(s)")
        return 1
    print("\nperf gate: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
