#include "datagen/medical.h"

#include <algorithm>

#include "util/rng.h"

namespace yafim::datagen {

using fim::Item;
using fim::Itemset;
using fim::Transaction;

MedicalDataset generate_medical(const MedicalParams& params) {
  YAFIM_CHECK(params.min_cluster_size >= 1 &&
                  params.min_cluster_size <= params.max_cluster_size,
              "bad cluster size range");
  YAFIM_CHECK(params.num_codes >
                  params.num_clusters * params.max_cluster_size,
              "code universe too small for the clusters");
  Rng rng(params.seed);

  MedicalDataset out;
  // Clusters draw from a reserved low-id code range (chronic-condition
  // codes are the common ones in real data); sporadic codes span the rest.
  u32 next_code = 0;
  double prevalence = params.base_prevalence;
  for (u32 c = 0; c < params.num_clusters; ++c) {
    const u32 size = static_cast<u32>(
        rng.range(params.min_cluster_size, params.max_cluster_size));
    Itemset cluster;
    for (u32 i = 0; i < size; ++i) cluster.push_back(next_code++);
    out.clusters.push_back(std::move(cluster));
    out.prevalence.push_back(prevalence);
    prevalence *= params.prevalence_decay;
  }

  const u32 sporadic_base = next_code;
  const u32 sporadic_range = params.num_codes - sporadic_base;

  std::vector<Transaction> cases;
  cases.reserve(params.num_cases);
  for (u64 t = 0; t < params.num_cases; ++t) {
    Transaction tx;
    for (u32 c = 0; c < out.clusters.size(); ++c) {
      if (!rng.bernoulli(out.prevalence[c])) continue;
      for (Item code : out.clusters[c]) {
        if (!rng.bernoulli(params.dropout)) tx.push_back(code);
      }
    }
    const u32 extras = rng.poisson(params.sporadic_mean);
    for (u32 e = 0; e < extras; ++e) {
      tx.push_back(sporadic_base + static_cast<Item>(rng.skewed_below(
                                       sporadic_range, params.sporadic_skew)));
    }
    if (tx.empty()) {
      tx.push_back(sporadic_base + static_cast<Item>(rng.skewed_below(
                                       sporadic_range, params.sporadic_skew)));
    }
    fim::canonicalize(tx);
    cases.push_back(std::move(tx));
  }
  out.db = fim::TransactionDB(std::move(cases));
  return out;
}

}  // namespace yafim::datagen
