// Fault-injection tests: lineage-based recovery of lost cached partitions
// (the "resilient" in RDD).
#include <gtest/gtest.h>

#include <numeric>

#include "engine/rdd.h"

namespace yafim::engine {
namespace {

Context::Options small_cluster() {
  Context::Options opts;
  opts.cluster = sim::ClusterConfig::with_nodes(4);
  opts.host_threads = 4;
  return opts;
}

std::vector<int> iota(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(Fault, LostPartitionIsRecomputedFromLineage) {
  Context ctx(small_cluster());
  auto rdd =
      ctx.parallelize(iota(100), 8).map([](const int& x) { return x * 3; });
  rdd.persist();
  const auto before = rdd.collect();

  ASSERT_TRUE(ctx.fault_injector().fail_partition(rdd.id(), 2));
  EXPECT_EQ(ctx.fault_injector().recomputations(), 0u);

  const auto after = rdd.collect();
  EXPECT_EQ(before, after);
  EXPECT_EQ(ctx.fault_injector().recomputations(), 1u);
}

TEST(Fault, FailPartitionOnUnknownRddReturnsFalse) {
  Context ctx(small_cluster());
  EXPECT_FALSE(ctx.fault_injector().fail_partition(12345, 0));
}

TEST(Fault, FailPartitionOnUncachedRddIsNoop) {
  Context ctx(small_cluster());
  auto rdd = ctx.parallelize(iota(10), 2).map([](const int& x) { return x; });
  rdd.persist();
  // Not computed yet: nothing cached to drop.
  EXPECT_FALSE(ctx.fault_injector().fail_partition(rdd.id(), 0));
}

TEST(Fault, KillExecutorDropsItsPartitions) {
  Context ctx(small_cluster());  // 4 nodes
  auto rdd = ctx.parallelize(iota(1000), 8).map([](const int& x) {
    return x + 1;
  });
  rdd.persist();
  const auto before = rdd.collect();

  // Node 1 hosts partitions 1 and 5 (pid % nodes).
  const u64 lost = ctx.fault_injector().kill_executor(1);
  EXPECT_EQ(lost, 2u);

  EXPECT_EQ(rdd.collect(), before);
  EXPECT_EQ(ctx.fault_injector().recomputations(), 2u);
}

TEST(Fault, KillExecutorOutOfRangeAborts) {
  Context ctx(small_cluster());
  EXPECT_DEATH(ctx.fault_injector().kill_executor(99), "no such node");
}

TEST(Fault, RecoveryThroughDeepLineage) {
  Context ctx(small_cluster());
  auto base = ctx.parallelize(iota(100), 4);
  auto mid = base.map([](const int& x) { return x * 2; });
  mid.persist();
  auto top = mid.filter([](const int& x) { return x % 4 == 0; })
                 .map([](const int& x) { return x + 1; });
  const auto before = top.collect();

  ctx.fault_injector().kill_executor(0);
  const auto after = top.collect();
  EXPECT_EQ(before, after);
  EXPECT_GT(ctx.fault_injector().recomputations(), 0u);
}

TEST(Fault, ResultsIdenticalUnderRepeatedFailures) {
  Context ctx(small_cluster());
  auto pairs = ctx.parallelize(iota(500), 8).map([](const int& x) {
    return std::pair<int, u64>(x % 7, 1);
  });
  pairs.persist();
  auto counts_before =
      pairs.reduce_by_key([](u64 a, u64 b) { return a + b; })
          .collect_as_map();
  for (u32 node = 0; node < 4; ++node) {
    ctx.fault_injector().kill_executor(node);
    auto counts_after =
        pairs.reduce_by_key([](u64 a, u64 b) { return a + b; })
            .collect_as_map();
    EXPECT_EQ(counts_before, counts_after) << "after killing node " << node;
  }
}

TEST(Fault, DroppedCacheHolderUnregisters) {
  Context ctx(small_cluster());
  u32 id;
  {
    auto rdd =
        ctx.parallelize(iota(10), 2).map([](const int& x) { return x; });
    rdd.persist();
    rdd.collect();
    id = rdd.id();
    ASSERT_TRUE(ctx.fault_injector().fail_partition(id, 0));
  }
  // The RDD is destroyed; the injector must not touch freed memory.
  EXPECT_FALSE(ctx.fault_injector().fail_partition(id, 0));
}

}  // namespace
}  // namespace yafim::engine
