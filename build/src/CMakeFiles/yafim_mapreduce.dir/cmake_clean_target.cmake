file(REMOVE_RECURSE
  "libyafim_mapreduce.a"
)
