// Support-threshold sweep (ours): how the YAFIM-vs-MRApriori gap and the
// mining profile respond as MinSup drops and the lattice grows -- the
// sensitivity axis the paper fixes per dataset (35% on MushRoom) but every
// FIM deployment has to tune.
#include "common.h"

using namespace yafim;
using namespace yafim::benchharness;

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv, /*default_scale=*/1.0);
  const auto cluster = sim::ClusterConfig::paper();

  std::printf("== MinSup sweep on MushRoom (scale=%.2f) ==\n\n", args.scale);
  auto bench = datagen::make_mushroom(args.scale);

  Table table({"MinSup", "frequent", "depth", "passes", "YAFIM(s)",
               "MRApriori(s)", "speedup"});
  for (const double sup : {0.60, 0.50, 0.40, 0.35, 0.30}) {
    datagen::BenchmarkDataset at_sup = bench;
    at_sup.paper_min_support = sup;
    const auto yafim_run = run_yafim(at_sup, cluster);
    const auto mr_run = run_mr(at_sup, cluster);
    YAFIM_CHECK(yafim_run.itemsets.same_itemsets(mr_run.itemsets),
                "engines disagree -- correctness bug");
    table.add_row({support_pct(sup), Table::num(yafim_run.itemsets.total()),
                   Table::num(u64{yafim_run.itemsets.max_k()}),
                   Table::num(u64{yafim_run.passes.size()}),
                   Table::num(yafim_run.total_seconds()),
                   Table::num(mr_run.total_seconds()),
                   Table::num(mr_run.total_seconds() /
                                  yafim_run.total_seconds(),
                              1) +
                       "x"});
  }
  print_table(table, args);
  std::printf("(lower MinSup -> deeper lattice -> more MR jobs: the gap "
              "tracks the pass count)\n");
  return 0;
}
