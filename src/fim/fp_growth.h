// FP-Growth (Han, Pei & Yin 2000): frequent-pattern mining without
// candidate generation. The paper cites it as the main single-node
// alternative to Apriori; here it serves as an independent cross-check
// oracle for the Apriori-family miners and as a subject for the comparison
// examples.
#pragma once

#include "fim/dataset.h"
#include "fim/result.h"

namespace yafim::fim {

/// Mine all frequent itemsets of `db` at relative support `min_support`.
/// Produces exactly the same FrequentItemsets as apriori_mine().
MiningRun fp_growth_mine(const TransactionDB& db, double min_support);

}  // namespace yafim::fim
