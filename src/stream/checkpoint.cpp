#include "stream/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "util/bytes.h"
#include "util/checksum.h"

namespace yafim::stream {

std::string stream_snapshot_name(u64 batch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "batch-%06llu.ck",
                static_cast<unsigned long long>(batch));
  return buf;
}

std::vector<u8> encode_stream_snapshot(const StreamCheckpointState& state) {
  ByteWriter w;
  w.write_u32(fim::kSnapshotMagic);
  w.write_u32(kStreamSnapshotVersion);
  w.write_u64(state.fingerprint);
  w.write_u64(state.batch);
  w.write_u64(state.source_offset);
  w.write_u64(state.total_transactions);
  w.write_u64(state.min_support_count);
  w.write_u32(state.window_factor);
  w.write_double(state.reverify_slack);
  w.write_u64(state.widenings);
  w.write_u64(state.slack_raises);
  w.write_u64(state.reverifications);

  // Supports and frontier sorted by (size, lex) so identical states encode
  // to identical bytes regardless of hash-map iteration order.
  auto supports = state.supports;
  std::sort(supports.begin(), supports.end(),
            [](const auto& a, const auto& b) {
              if (a.first.size() != b.first.size()) {
                return a.first.size() < b.first.size();
              }
              return a.first < b.first;
            });
  w.write_u64(supports.size());
  for (const auto& [itemset, support] : supports) {
    w.write_u32_vec(itemset);
    w.write_u64(support);
  }

  auto frontier = state.frontier;
  std::sort(frontier.begin(), frontier.end(),
            [](const fim::Itemset& a, const fim::Itemset& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  w.write_u64(frontier.size());
  for (const fim::Itemset& s : frontier) w.write_u32_vec(s);

  w.write_u64(state.batches.size());
  for (const StreamBatchStats& b : state.batches) {
    w.write_u64(b.batch);
    w.write_u64(b.transactions);
    w.write_u64(b.new_candidates);
    w.write_u32(b.window_factor);
    w.write_double(b.sim_seconds);
  }

  w.write_u64(xxh64(w.data().data(), w.data().size()));
  return w.take();
}

std::optional<StreamCheckpointState> decode_stream_snapshot(
    std::span<const u8> bytes, u64 expected_fingerprint) {
  // Checksum FIRST, then parse: only verified bytes reach the ByteReader,
  // so a torn or flipped snapshot is rejected whole (fim/checkpoint.cpp
  // discipline).
  constexpr size_t kMinBytes = 4 + 4 + 8 + 8;
  if (bytes.size() < kMinBytes) return std::nullopt;
  const size_t body = bytes.size() - 8;
  u64 stored_sum;
  std::memcpy(&stored_sum, bytes.data() + body, sizeof(stored_sum));
  if (xxh64(bytes.data(), body) != stored_sum) return std::nullopt;

  ByteReader r(bytes.first(body));
  if (r.read_u32() != fim::kSnapshotMagic) return std::nullopt;
  if (r.read_u32() != kStreamSnapshotVersion) return std::nullopt;

  StreamCheckpointState state;
  state.fingerprint = r.read_u64();
  if (state.fingerprint != expected_fingerprint) return std::nullopt;
  state.batch = r.read_u64();
  state.source_offset = r.read_u64();
  state.total_transactions = r.read_u64();
  state.min_support_count = r.read_u64();
  state.window_factor = r.read_u32();
  state.reverify_slack = r.read_double();
  state.widenings = r.read_u64();
  state.slack_raises = r.read_u64();
  state.reverifications = r.read_u64();

  const u64 nsupports = r.read_u64();
  state.supports.reserve(nsupports);
  for (u64 i = 0; i < nsupports; ++i) {
    fim::Itemset s = r.read_u32_vec();
    const u64 support = r.read_u64();
    state.supports.emplace_back(std::move(s), support);
  }

  const u64 nfrontier = r.read_u64();
  state.frontier.reserve(nfrontier);
  for (u64 i = 0; i < nfrontier; ++i) {
    state.frontier.push_back(r.read_u32_vec());
  }

  const u64 nbatches = r.read_u64();
  state.batches.reserve(nbatches);
  for (u64 i = 0; i < nbatches; ++i) {
    StreamBatchStats b;
    b.batch = r.read_u64();
    b.transactions = r.read_u64();
    b.new_candidates = r.read_u64();
    b.window_factor = r.read_u32();
    b.sim_seconds = r.read_double();
    state.batches.push_back(b);
  }

  if (!r.done()) return std::nullopt;
  return state;
}

void save_stream_snapshot(fim::CheckpointStore& store,
                          const StreamCheckpointState& state) {
  const std::vector<u8> bytes = encode_stream_snapshot(state);
  store.put(stream_snapshot_name(state.batch), bytes);
  obs::count(obs::CounterId::kCheckpointsWritten);
  obs::count(obs::CounterId::kCheckpointBytesWritten, bytes.size());
}

std::optional<StreamCheckpointState> load_latest_stream_snapshot(
    fim::CheckpointStore& store, u64 expected_fingerprint, u32* rejected) {
  std::vector<std::string> names = store.list();
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    const auto bytes = store.get(*it);
    if (bytes) {
      auto state = decode_stream_snapshot(*bytes, expected_fingerprint);
      if (state) return state;
    }
    if (rejected) ++(*rejected);
    obs::count(obs::CounterId::kCheckpointsRejected);
  }
  return std::nullopt;
}

}  // namespace yafim::stream
