// Dist-Eclat (Moens, Aksehirli & Goethals 2013): distributed Eclat, the
// speed-focused alternative the paper's related work cites. Instead of
// Apriori's level-wise data scans, the search space itself is partitioned:
//
//   1. compute frequent items and the vertical layout (item -> tid list)
//      with dataflow over the transaction RDD;
//   2. mine frequent *seed prefixes* of length `prefix_depth`;
//   3. broadcast the (frequent-item) vertical database and let each worker
//      mine the prefix-tree subtrees of its seed prefixes independently,
//      depth-first, entirely in memory.
//
// One data pass + one compute-bound stage, no per-level jobs. Exact: every
// frequent itemset larger than the seed depth has a unique frequent seed
// prefix (its lexicographically first items), whose subtree emits it.
#pragma once

#include <string>

#include "engine/context.h"
#include "fim/dataset.h"
#include "fim/result.h"
#include "simfs/simfs.h"

namespace yafim::fim {

struct DistEclatOptions {
  double min_support = 0.1;
  /// Seed prefix length handed to workers (Moens et al. use 2-3; 1 means
  /// one subtree per frequent item).
  u32 prefix_depth = 2;
  /// RDD partitions for the transactions dataset (0 = context default).
  u32 partitions = 0;
};

struct DistEclatRun {
  MiningRun run;
  /// Seed prefixes distributed to workers.
  u64 seed_prefixes = 0;
  /// Broadcast vertical-database payload (bytes).
  u64 vertical_bytes = 0;
};

/// Mine the dataset at `input_path` (serialized TransactionDB) with
/// Dist-Eclat. `run.passes` has three entries: item counting, seed
/// mining, and subtree mining.
DistEclatRun dist_eclat_mine(engine::Context& ctx, simfs::SimFS& fs,
                             const std::string& input_path,
                             const DistEclatOptions& options);

/// Convenience overload staging `db` onto `fs` first.
DistEclatRun dist_eclat_mine(engine::Context& ctx, simfs::SimFS& fs,
                             const TransactionDB& db,
                             const DistEclatOptions& options);

}  // namespace yafim::fim
