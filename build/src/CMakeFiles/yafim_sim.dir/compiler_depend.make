# Empty compiler generated dependencies file for yafim_sim.
# This may be replaced when dependencies are built.
