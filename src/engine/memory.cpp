#include "engine/memory.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace yafim::engine {

MemoryBudget::MemoryBudget(const sim::ClusterConfig& cluster,
                           const FaultProfile& fault)
    : nodes_(std::max(1u, cluster.nodes)),
      base_budget_(cluster.executor_memory_bytes),
      shuffle_buffer_bytes_(cluster.shuffle_buffer_bytes),
      mem_shrink_pass_(fault.mem_shrink_pass),
      mem_shrink_factor_(fault.mem_shrink_factor),
      mem_shrink_node_(fault.mem_shrink_node % nodes_) {}

u64 MemoryBudget::node_budget(u32 node) const {
  if (base_budget_ == 0) return 0;
  if (shrunk_.load(std::memory_order_relaxed) && node == mem_shrink_node_) {
    const double f = std::clamp(mem_shrink_factor_, 0.0, 1.0);
    return static_cast<u64>(static_cast<double>(base_budget_) * f);
  }
  return base_budget_;
}

u64 MemoryBudget::min_node_budget() const {
  if (base_budget_ == 0) return 0;
  u64 min_budget = base_budget_;
  for (u32 n = 0; n < nodes_; ++n) {
    min_budget = std::min(min_budget, node_budget(n));
  }
  return min_budget;
}

u64 MemoryBudget::used_on(u32 node) const {
  (void)node;  // spread components are uniform; broadcast is replicated
  const u64 spread =
      (cached_bytes_.load(std::memory_order_relaxed) +
       shuffle_buffered_.load(std::memory_order_relaxed)) /
      nodes_;
  return broadcast_resident_.load(std::memory_order_relaxed) + spread;
}

bool MemoryBudget::broadcast_fits(u64 bytes) const {
  if (unbounded()) return true;
  // The replicated payload must fit on the tightest node next to what the
  // ledger already places there.
  u64 worst_headroom = ~u64{0};
  for (u32 n = 0; n < nodes_; ++n) {
    const u64 budget = node_budget(n);
    const u64 used = used_on(n);
    worst_headroom = std::min(worst_headroom, budget > used ? budget - used : 0);
  }
  return bytes <= worst_headroom;
}

bool MemoryBudget::shuffle_should_spill(u64 buffered_bytes) const {
  if (shuffle_buffer_bytes_ == 0) return false;
  return buffered_bytes > shuffle_buffer_bytes_ * nodes_;
}

void MemoryBudget::begin_pass(u32 pass) {
  // Broadcast payloads live for one pass: the miners drop their handles at
  // the pass boundary, so the replicated component resets here.
  broadcast_resident_.store(0, std::memory_order_relaxed);
  if (mem_shrink_pass_ != 0 && pass >= mem_shrink_pass_ &&
      !shrunk_.exchange(true, std::memory_order_relaxed)) {
    shrinks_applied_.fetch_add(1, std::memory_order_relaxed);
    obs::count(obs::CounterId::kMemShrinksApplied);
    obs::instant("fault", "mem_shrink",
                 {{"pass", pass},
                  {"node", mem_shrink_node_},
                  {"budget", node_budget(mem_shrink_node_)}});
  }
}

void MemoryBudget::note_fallback(u64 bytes) {
  fallbacks_.fetch_add(1, std::memory_order_relaxed);
  obs::count(obs::CounterId::kBroadcastFallbacks);
  obs::instant("memory", "broadcast_fallback", {{"bytes", bytes}});
}

void MemoryBudget::note_spill_write(u64 raw_bytes, u64 stored_bytes) {
  spill_blocks_written_.fetch_add(1, std::memory_order_relaxed);
  spill_bytes_raw_.fetch_add(raw_bytes, std::memory_order_relaxed);
  spill_bytes_stored_.fetch_add(stored_bytes, std::memory_order_relaxed);
  obs::count(obs::CounterId::kSpillBlocksWritten);
  obs::count(obs::CounterId::kSpillBytesRaw, raw_bytes);
  obs::count(obs::CounterId::kSpillBytesStored, stored_bytes);
}

void MemoryBudget::note_spill_read(u64 raw_bytes) {
  spill_blocks_read_.fetch_add(1, std::memory_order_relaxed);
  obs::count(obs::CounterId::kSpillBlocksRead);
  (void)raw_bytes;
}

}  // namespace yafim::engine
