#include "fim/fp_growth.h"

#include <algorithm>
#include <unordered_map>

#include "fim/fp_tree.h"

namespace yafim::fim {

MiningRun fp_growth_mine(const TransactionDB& db, double min_support) {
  const u64 min_count = db.min_support_count(min_support);
  MiningRun run;
  run.itemsets = FrequentItemsets(min_count, db.size());

  // Frequent items, ranked by (count desc, item asc) for determinism.
  std::unordered_map<Item, u64> counts;
  for (const Transaction& t : db.transactions()) {
    for (Item i : t) ++counts[i];
  }
  std::vector<std::pair<Item, u64>> frequent;
  for (const auto& [item, count] : counts) {
    if (count >= min_count) frequent.emplace_back(item, count);
  }
  std::sort(frequent.begin(), frequent.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  std::unordered_map<Item, u32> item_to_rank;
  std::vector<Item> rank_to_item(frequent.size());
  for (u32 r = 0; r < frequent.size(); ++r) {
    item_to_rank.emplace(frequent[r].first, r);
    rank_to_item[r] = frequent[r].first;
  }

  FpTree tree(static_cast<u32>(frequent.size()));
  for (const Transaction& t : db.transactions()) {
    std::vector<u32> ranks;
    ranks.reserve(t.size());
    for (Item i : t) {
      auto it = item_to_rank.find(i);
      if (it != item_to_rank.end()) ranks.push_back(it->second);
    }
    std::sort(ranks.begin(), ranks.end());
    if (!ranks.empty()) tree.insert(ranks, 1);
  }

  mine_fp_tree(tree, min_count, rank_to_item, /*root_filter=*/nullptr,
               [&run](const Itemset& itemset, u64 support) {
                 run.itemsets.add(itemset, support);
               });

  // FP-Growth has no per-level passes; synthesise PassStats from the
  // result so reports are comparable.
  for (u32 k = 1; k <= run.itemsets.max_k(); ++k) {
    run.passes.push_back(
        PassStats{k, run.itemsets.level(k).size(),
                  run.itemsets.level(k).size(), 0.0});
  }
  return run;
}

}  // namespace yafim::fim
