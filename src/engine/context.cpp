#include "engine/context.h"

#include <algorithm>
#include <numeric>
#include <optional>

#include "engine/work.h"
#include "obs/trace.h"

namespace yafim::engine {

namespace {

/// Injected failure thrown at task launch and caught by the attempt loop,
/// so recovery exercises a real C++ exception path through the machinery.
struct InjectedTaskFailure {
  u32 node;
};

}  // namespace

Context::Context(Options opts)
    : opts_(std::move(opts)),
      model_(opts_.cluster),
      pool_(opts_.host_threads),
      fault_(opts_.cluster, opts_.fault),
      memory_budget_(opts_.cluster, opts_.fault),
      default_partitions_(opts_.default_partitions
                              ? opts_.default_partitions
                              : 2 * opts_.cluster.total_cores()) {
  // DetSan resolves node names for YL007 through the linter's plan shadow,
  // so enabling the sanitizer forces the linter on.
  if (opts_.detsan.enabled) opts_.lint.enabled = true;
  linter_.configure(opts_.lint, opts_.cluster.executor_memory_bytes);
  detsan_.configure(opts_.detsan, &linter_);
  // Stages are launched from the constructing thread; name it in traces.
  obs::Tracer::instance().set_thread_name("driver");
}

void Context::run_stage(const std::string& label, u32 ntasks,
                        const std::function<void(u32)>& body) {
  static const std::atomic<u64> kNoShuffle{0};
  run_stage_with_shuffle(label, ntasks, body, kNoShuffle);
}

std::vector<sim::TaskRecord> Context::measure_tasks(
    const std::string& label, u32 ntasks,
    const std::function<void(u32)>& body) {
  YAFIM_CHECK(!ThreadPool::on_pool_thread(),
              "stages must be launched from the driver thread");
  if (fault_.profile().enabled()) {
    return measure_tasks_with_faults(label, ntasks, body);
  }
  const bool traced = obs::enabled();
  std::vector<sim::TaskRecord> tasks(ntasks);
  pool_.parallel_for(ntasks, [&](u32 i) {
    std::optional<obs::Span> span;
    if (traced) {
      span.emplace("task", label);
      span->arg("index", i);
    }
    DetSan::StageScope stage_scope(detsan_.enabled() ? &label : nullptr);
    work::Scope scope;
    body(i);
    tasks[i].work = scope.measured();
    if (span) span->arg("work", tasks[i].work);
  });
  return tasks;
}

std::vector<sim::TaskRecord> Context::measure_tasks_with_faults(
    const std::string& label, u32 ntasks,
    const std::function<void(u32)>& body) {
  const FaultProfile& fp = fault_.profile();
  const u64 stage = stage_seq_.fetch_add(1, std::memory_order_relaxed);
  const bool traced = obs::enabled();

  std::vector<sim::TaskRecord> tasks(ntasks);
  for (sim::TaskRecord& t : tasks) t.attempts = 0;
  std::vector<u64> base_work(ntasks, 0);   // pre-straggler measured work
  std::vector<u8> exhausted(ntasks, 0);

  auto straggle = [&fp](u64 work) -> u64 {
    return static_cast<u64>(static_cast<double>(work) * fp.straggler_slowdown);
  };

  // A stage attempt runs every task in `todo` through the per-task attempt
  // budget; tasks that exhaust it are retried by the next stage attempt
  // with a fresh budget (Spark resubmits only the lost tasks).
  std::vector<u32> todo(ntasks);
  std::iota(todo.begin(), todo.end(), 0);
  const u32 max_stage_attempts = std::max(1u, fp.max_stage_attempts);
  for (u32 stage_attempt = 0;; ++stage_attempt) {
    pool_.parallel_for(static_cast<u32>(todo.size()), [&](u32 j) {
      const u32 i = todo[j];
      sim::TaskRecord& rec = tasks[i];
      DetSan::StageScope stage_scope(detsan_.enabled() ? &label : nullptr);
      std::optional<obs::Span> span;
      if (traced) {
        span.emplace("task", label);
        span->arg("index", i);
      }
      for (u32 attempt = 0;; ++attempt) {
        const u32 node = fault_.node_of(i);
        ++rec.attempts;
        try {
          if (fault_.draw_task_failure(stage, stage_attempt, i, attempt,
                                       node)) {
            throw InjectedTaskFailure{node};
          }
        } catch (const InjectedTaskFailure& failure) {
          fault_.note_task_failure(failure.node);
          if (traced) {
            obs::instant("fault", "task_failure",
                         {{"task", i},
                          {"attempt", attempt},
                          {"node", failure.node}});
          }
          if (attempt + 1 >= std::max(1u, fp.max_task_attempts)) {
            exhausted[i] = 1;
            if (span) span->arg("exhausted", 1);
            return;
          }
          fault_.note_task_retry();
          continue;
        }
        work::Scope scope;
        body(i);
        base_work[i] = scope.measured();
        rec.work = base_work[i];
        exhausted[i] = 0;
        if (fault_.draw_straggler(stage, i, /*copy=*/0)) {
          fault_.note_straggler();
          rec.work = straggle(base_work[i]);
          if (span) span->arg("straggler", 1);
        }
        break;
      }
      if (span) {
        span->arg("work", rec.work);
        if (rec.attempts > 1) span->arg("attempts", rec.attempts);
      }
    });

    std::vector<u32> failed;
    for (u32 i : todo) {
      if (exhausted[i]) failed.push_back(i);
    }
    if (failed.empty()) break;
    if (stage_attempt + 1 >= max_stage_attempts) {
      throw StageFailedError(label, static_cast<u32>(failed.size()),
                             stage_attempt + 1);
    }
    fault_.note_stage_retry();
    obs::instant("fault", "stage_retry",
                 {{"attempt", stage_attempt + 1},
                  {"failed_tasks", failed.size()}});
    todo = std::move(failed);
  }

  // Each launch beyond the surviving one burned a configured fraction of
  // the task's work before dying; the cost model recharges it.
  for (u32 i = 0; i < ntasks; ++i) {
    if (tasks[i].attempts > 1) {
      tasks[i].wasted_work = static_cast<u64>(
          static_cast<double>(tasks[i].attempts - 1) *
          fp.failed_attempt_work_fraction * static_cast<double>(base_work[i]));
    }
  }

  // Speculative execution: race a copy against any task slower than a
  // multiple of the stage's median runtime; the first finisher wins and the
  // loser is killed at that moment (both consumed a core until then).
  if (fp.speculation_multiple > 0.0 && ntasks >= 2) {
    std::vector<u64> sorted_work(ntasks);
    for (u32 i = 0; i < ntasks; ++i) sorted_work[i] = tasks[i].work;
    std::nth_element(sorted_work.begin(), sorted_work.begin() + ntasks / 2,
                     sorted_work.end());
    const double median = static_cast<double>(sorted_work[ntasks / 2]);
    std::vector<sim::TaskRecord> copies;
    if (median > 0.0) {
      const double threshold = fp.speculation_multiple * median;
      for (u32 i = 0; i < ntasks; ++i) {
        if (static_cast<double>(tasks[i].work) <= threshold) continue;
        const u64 copy_work = fault_.draw_straggler(stage, i, /*copy=*/1)
                                  ? straggle(base_work[i])
                                  : base_work[i];
        const bool win = copy_work < tasks[i].work;
        fault_.note_speculation(win);
        sim::TaskRecord copy;
        copy.work = std::min(copy_work, tasks[i].work);
        copy.speculative = true;
        copies.push_back(copy);
        if (traced) {
          obs::instant("fault", win ? "speculation_win" : "speculation_loss",
                       {{"task", i},
                        {"original_work", tasks[i].work},
                        {"copy_work", copy_work}});
        }
        if (win) tasks[i].work = copy_work;
      }
    }
    tasks.insert(tasks.end(), copies.begin(), copies.end());
  }
  return tasks;
}

void Context::run_stage_with_shuffle(const std::string& label, u32 ntasks,
                                     const std::function<void(u32)>& body,
                                     const std::atomic<u64>& shuffle_bytes) {
  std::optional<obs::Span> span;
  if (obs::enabled()) {
    span.emplace("stage", label);
    span->arg("ntasks", ntasks);
    if (pass_) span->arg("pass", pass_);
  }

  std::vector<sim::TaskRecord> tasks = measure_tasks(label, ntasks, body);

  sim::StageRecord record;
  record.label = label;
  record.kind = sim::StageKind::kSparkStage;
  record.pass = pass_;
  record.tasks = std::move(tasks);
  record.shuffle_bytes = shuffle_bytes.load(std::memory_order_relaxed);
  if (pending_broadcast_ > 0) {
    if (opts_.share_mode == ShareMode::kBroadcast) {
      record.broadcast_bytes = pending_broadcast_;
    } else {
      record.naive_ship_bytes = pending_broadcast_;
    }
    pending_broadcast_ = 0;
  }
  if (span) {
    if (record.shuffle_bytes) span->arg("shuffle_bytes", record.shuffle_bytes);
    if (record.broadcast_bytes) {
      span->arg("broadcast_bytes", record.broadcast_bytes);
    }
    u64 total_work = 0;
    for (const sim::TaskRecord& t : record.tasks) total_work += t.work;
    span->arg("work", total_work);
    span->end();  // before record() drains, so this stage is included
  }
  this->record(std::move(record));
}

void Context::record(sim::StageRecord record) {
  if (obs::enabled()) {
    // Mirror the StageRecord's byte accounting into the wall-clock counter
    // registry off the very same record, so SimReport totals and traced
    // counters agree by construction.
    obs::count(obs::CounterId::kShuffleBytes, record.shuffle_bytes);
    obs::count(obs::CounterId::kBroadcastBytes, record.broadcast_bytes);
    obs::count(obs::CounterId::kNaiveShipBytes, record.naive_ship_bytes);
    obs::count(obs::CounterId::kDfsReadBytes, record.dfs_read_bytes);
    obs::count(obs::CounterId::kDfsWriteBytes, record.dfs_write_bytes);
  }
  {
    util::MutexLock lock(report_mutex_);
    report_.add(std::move(record));
  }
  // Stage/action boundary: collect what the worker threads buffered.
  if (obs::enabled()) obs::Tracer::instance().drain();
}

}  // namespace yafim::engine
