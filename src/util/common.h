// Common small utilities shared across all yafim subsystems.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

namespace yafim {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Always-on invariant check (unlike assert(), active in release builds).
/// Used on cheap invariants at module boundaries; hot inner loops use
/// YAFIM_DCHECK which compiles out in release.
#define YAFIM_CHECK(cond, msg)                                                \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s -- %s\n", __FILE__,     \
                   __LINE__, #cond, msg);                                     \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#ifndef NDEBUG
#define YAFIM_DCHECK(cond, msg) YAFIM_CHECK(cond, msg)
#else
#define YAFIM_DCHECK(cond, msg) ((void)0)
#endif

/// Round-up integer division.
constexpr u64 ceil_div(u64 a, u64 b) { return (a + b - 1) / b; }

}  // namespace yafim
