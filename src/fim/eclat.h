// Eclat (Zaki 2000): depth-first frequent-itemset mining over the vertical
// layout (per-item tid lists intersected along the prefix tree). Cited by
// the paper via Dist-Eclat/BigFIM; here it is the second independent
// cross-check oracle.
#pragma once

#include "fim/dataset.h"
#include "fim/result.h"

namespace yafim::fim {

/// Mine all frequent itemsets of `db` at relative support `min_support`.
/// Produces exactly the same FrequentItemsets as apriori_mine().
MiningRun eclat_mine(const TransactionDB& db, double min_support);

}  // namespace yafim::fim
