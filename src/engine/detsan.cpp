#include "engine/detsan.h"

#include <sstream>
#include <utility>

#include "engine/lint.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace yafim::engine {

namespace {

/// Thread-local stage label; owned by the string measure_tasks holds alive
/// for the duration of the stage.
thread_local const std::string* t_stage = nullptr;

const std::string& empty_stage() {
  static const std::string kEmpty;
  return kEmpty;
}

}  // namespace

DetSanError::DetSanError(std::string node_name, std::string stage,
                         std::string element, const std::string& what)
    : std::runtime_error(what),
      node_name_(std::move(node_name)),
      stage_(std::move(stage)),
      element_(std::move(element)) {}

void DetSan::configure(const DetSanOptions& options, PlanLinter* linter) {
  enabled_ = options.enabled;
  sample_rate_ = options.sample_rate;
  seed_ = options.seed;
  fail_fast_ = options.fail_fast;
  linter_ = linter;
}

bool DetSan::should_replay(u32 node_id, u32 pid) const {
  if (!enabled_ || sample_rate_ <= 0.0) return false;
  if (sample_rate_ >= 1.0) return true;
  Rng rng(mix64(seed_ ^ (static_cast<u64>(node_id) << 32 | pid)));
  return rng.bernoulli(sample_rate_);
}

u64 DetSan::replay_seed(u32 node_id, u32 pid) const {
  return mix64(seed_ + 1) ^
         mix64(static_cast<u64>(node_id) << 32 | (pid + 1));
}

std::vector<u32> DetSan::permutation(size_t n, u64 seed) {
  std::vector<u32> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<u32>(i);
  Rng rng(seed);
  for (size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  if (n >= 2) {
    // A shuffle can land on the identity (always for tiny n with some
    // probability); visiting elements in the original order tests nothing,
    // so rotate by one in that case. Still deterministic in the seed.
    bool identity = true;
    for (size_t i = 0; i < n && identity; ++i) identity = order[i] == i;
    if (identity) {
      const u32 first = order[0];
      for (size_t i = 0; i + 1 < n; ++i) order[i] = order[i + 1];
      order[n - 1] = first;
    }
  }
  return order;
}

void DetSan::note_replayed() {
  replayed_.fetch_add(1, std::memory_order_relaxed);
  obs::count(obs::CounterId::kDetsanTasksReplayed);
}

void DetSan::report_divergence(u32 node_id, const char* op,
                               const std::string& element) {
  std::string node_name = "rdd#" + std::to_string(node_id);
  if (linter_ != nullptr) node_name = linter_->node_label(node_id);
  std::ostringstream os;
  os << "replay of " << op << " with permuted input order diverged at "
     << element << "; the closure is impure or the reduce fn is "
        "non-commutative/non-associative";
  if (linter_ != nullptr) {
    linter_->note_detsan_divergence(node_id, node_name, os.str());
  }
  diverged(node_name, op, element);
}

void DetSan::report_divergence_raw(const std::string& what, const char* op,
                                   const std::string& element) {
  std::ostringstream os;
  os << "re-serialization of " << what << " diverged at " << element
     << "; the serialized block contains unstable (uninitialized or "
        "address-dependent) bytes";
  if (linter_ != nullptr) {
    linter_->note_detsan_divergence(/*node=*/0, what, os.str());
  }
  diverged(what, op, element);
}

void DetSan::diverged(const std::string& node_name, const char* op,
                      const std::string& element) {
  divergences_.fetch_add(1, std::memory_order_relaxed);
  obs::count(obs::CounterId::kDetsanDivergences);
  if (!fail_fast_) return;
  const std::string stage = current_stage();
  std::ostringstream os;
  os << "DetSan: node '" << node_name << "'";
  if (!stage.empty()) os << " in stage '" << stage << "'";
  os << ": " << op << " replay diverged at " << element;
  throw DetSanError(node_name, stage, element, os.str());
}

const std::string& DetSan::current_stage() {
  return t_stage != nullptr ? *t_stage : empty_stage();
}

DetSan::StageScope::StageScope(const std::string* label) : prev_(t_stage) {
  if (label != nullptr) t_stage = label;
}

DetSan::StageScope::~StageScope() { t_stage = prev_; }

}  // namespace yafim::engine
