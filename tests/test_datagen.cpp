// Tests for the workload generators: determinism, shape control, and the
// planted-pattern guarantees the benchmark datasets rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "datagen/benchmarks.h"
#include "datagen/dense.h"
#include "datagen/medical.h"
#include "datagen/quest.h"
#include "fim/apriori_seq.h"

namespace yafim::datagen {
namespace {

using fim::Itemset;

TEST(Quest, DeterministicForSeed) {
  QuestParams p;
  p.num_transactions = 500;
  p.num_items = 100;
  p.num_patterns = 20;
  const auto a = generate_quest(p);
  const auto b = generate_quest(p);
  EXPECT_EQ(a.transactions(), b.transactions());
  p.seed += 1;
  const auto c = generate_quest(p);
  EXPECT_NE(a.transactions(), c.transactions());
}

TEST(Quest, ShapeMatchesParams) {
  QuestParams p;
  p.num_transactions = 5000;
  p.avg_transaction_len = 10.0;
  p.num_items = 200;
  p.num_patterns = 50;
  const auto db = generate_quest(p);
  const auto stats = db.stats();
  EXPECT_EQ(stats.num_transactions, 5000u);
  EXPECT_LE(stats.item_universe, 200u);
  // Corruption and dedup pull the realised length below target; demand the
  // right ballpark rather than exact equality.
  EXPECT_GT(stats.avg_length, 5.0);
  EXPECT_LT(stats.avg_length, 16.0);
  for (const auto& t : db.transactions()) {
    ASSERT_FALSE(t.empty());
    ASSERT_TRUE(fim::is_canonical(t));
  }
}

TEST(Dense, DeterministicForSeed) {
  DenseSpec spec;
  spec.num_transactions = 300;
  spec.attr_values = {3, 3, 4};
  const auto a = generate_dense(spec);
  const auto b = generate_dense(spec);
  EXPECT_EQ(a.transactions(), b.transactions());
}

TEST(Dense, OneValuePerAttribute) {
  DenseSpec spec;
  spec.num_transactions = 200;
  spec.attr_values = {2, 5, 3};
  const auto db = generate_dense(spec);
  for (const auto& t : db.transactions()) {
    ASSERT_EQ(t.size(), 3u);
    EXPECT_LT(t[0], 2u);
    EXPECT_GE(t[1], 2u);
    EXPECT_LT(t[1], 7u);
    EXPECT_GE(t[2], 7u);
    EXPECT_LT(t[2], 10u);
  }
}

TEST(Dense, DenseItemMapping) {
  DenseSpec spec;
  spec.attr_values = {2, 5, 3};
  EXPECT_EQ(dense_item(spec, 0, 0), 0u);
  EXPECT_EQ(dense_item(spec, 0, 1), 1u);
  EXPECT_EQ(dense_item(spec, 1, 0), 2u);
  EXPECT_EQ(dense_item(spec, 2, 2), 9u);
  EXPECT_DEATH(dense_item(spec, 3, 0), "attribute");
  EXPECT_DEATH(dense_item(spec, 1, 5), "value");
}

TEST(Dense, PlantedPatternReachesTargetSupport) {
  DenseSpec spec;
  spec.num_transactions = 5000;
  spec.attr_values.assign(10, 4);
  PlantedPattern p;
  p.prob = 0.4;
  for (u32 a = 0; a < 5; ++a) p.cells.emplace_back(a, 0);
  spec.planted.push_back(p);
  const auto db = generate_dense(spec);

  const Itemset planted = planted_itemset(spec, p);
  const double observed = static_cast<double>(db.support(planted)) /
                          static_cast<double>(db.size());
  // Noise can only add occurrences; sampling noise is tiny at n = 5000.
  EXPECT_GE(observed, 0.38);
  EXPECT_LE(observed, 0.55);
}

TEST(Medical, ClustersAreMinedAsFrequentItemsets) {
  MedicalParams params;
  params.num_cases = 5000;
  const auto data = generate_medical(params);
  ASSERT_EQ(data.clusters.size(), params.num_clusters);

  fim::AprioriOptions opt;
  opt.min_support = 0.03;
  const auto run = fim::apriori_mine(data.db, opt);
  // The most prevalent clusters must surface in the mined itemsets.
  for (u32 c = 0; c < 3; ++c) {
    const double full_support =
        data.prevalence[c] *
        std::pow(1.0 - params.dropout, data.clusters[c].size());
    if (full_support < 0.05) continue;
    EXPECT_TRUE(run.itemsets.contains(data.clusters[c]))
        << "cluster " << c << " expected frequent";
  }
}

TEST(Medical, CaseShape) {
  MedicalParams params;
  params.num_cases = 1000;
  const auto data = generate_medical(params);
  EXPECT_EQ(data.db.size(), 1000u);
  for (const auto& t : data.db.transactions()) {
    ASSERT_FALSE(t.empty());
    ASSERT_TRUE(fim::is_canonical(t));
    for (fim::Item code : t) EXPECT_LT(code, params.num_codes);
  }
}

TEST(Benchmarks, TableOneShapes) {
  // Generated datasets must match the paper's Table I row for #transactions
  // exactly and #items closely (the itemset universe is constructed).
  const auto mushroom = make_mushroom();
  EXPECT_EQ(mushroom.db.size(), 8124u);
  EXPECT_EQ(mushroom.db.stats().item_universe, 119u);
  EXPECT_DOUBLE_EQ(mushroom.paper_min_support, 0.35);

  const auto chess = make_chess();
  EXPECT_EQ(chess.db.size(), 3196u);
  EXPECT_EQ(chess.db.stats().item_universe, 75u);

  const auto pumsb = make_pumsb_star();
  EXPECT_EQ(pumsb.db.size(), 49046u);
  EXPECT_EQ(pumsb.db.stats().item_universe, 2088u);
  EXPECT_NEAR(pumsb.db.stats().avg_length, 50.0, 0.5);
}

TEST(Benchmarks, ScaleParameterShrinksDatasets) {
  const auto small = make_mushroom(0.1);
  EXPECT_NEAR(static_cast<double>(small.db.size()), 812.0, 1.0);
}

TEST(Benchmarks, PaperBenchmarksComplete) {
  const auto benches = make_paper_benchmarks(0.05);
  ASSERT_EQ(benches.size(), 4u);
  EXPECT_EQ(benches[0].name, "MushRoom");
  EXPECT_EQ(benches[1].name, "T10I4D100K");
  EXPECT_EQ(benches[2].name, "Chess");
  EXPECT_EQ(benches[3].name, "Pumsb_star");
  for (const auto& b : benches) {
    EXPECT_GT(b.db.size(), 0u);
    EXPECT_GT(b.paper_min_support, 0.0);
  }
}

TEST(Benchmarks, MiningDepthMatchesPaperFigures) {
  // Mushroom at 35% must go ~8 levels deep (Fig. 3a's pass axis); chess at
  // 85% deeper (Fig. 3c); these shapes are what the figure benches rely on.
  fim::AprioriOptions opt;
  const auto mushroom = make_mushroom(0.5);
  opt.min_support = mushroom.paper_min_support;
  EXPECT_GE(fim::apriori_mine(mushroom.db, opt).itemsets.max_k(), 7u);

  const auto chess = make_chess(0.5);
  opt.min_support = chess.paper_min_support;
  EXPECT_GE(fim::apriori_mine(chess.db, opt).itemsets.max_k(), 10u);
}

}  // namespace
}  // namespace yafim::datagen
