#!/usr/bin/env bash
# clang-tidy lane: run the curated .clang-tidy checks over the repo's own
# sources, using the compilation database CMake exports on every configure
# (CMAKE_EXPORT_COMPILE_COMMANDS is on unconditionally).
#
#   scripts/lint.sh [BUILD_DIR] [--jobs=N]    # default BUILD_DIR: build,
#                                             # default jobs: nproc
#
# Scope is src/ and examples/: the translation units whose idiom the check
# set was curated against. (bench/ is dominated by google-benchmark macro
# expansion, tests/ by gtest's; both drown the lane in third-party noise.)
# Exits non-zero on any finding (.clang-tidy sets WarningsAsErrors: '*').
#
# Every worker's exit status is collected individually: an early failure
# keeps the remaining files linting (so one run reports ALL findings) and
# still fails the lane. The previous xargs pipeline surfaced only a
# generic exit 123 and, under some xargs implementations, only the status
# of the final batch.
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir="build"
jobs="$(nproc)"
for arg in "$@"; do
  case "$arg" in
    --jobs=*) jobs="${arg#--jobs=}" ;;
    -*)
      echo "usage: $0 [BUILD_DIR] [--jobs=N]" >&2
      exit 2
      ;;
    *) build_dir="$arg" ;;
  esac
done
if ! [[ "$jobs" =~ ^[1-9][0-9]*$ ]]; then
  echo "error: --jobs must be a positive integer, got '$jobs'" >&2
  exit 2
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "error: $build_dir/compile_commands.json not found" >&2
  echo "configure first: cmake -B $build_dir -S ." >&2
  exit 2
fi

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "error: $tidy not found (set CLANG_TIDY to point at a binary)" >&2
  exit 2
fi
"$tidy" --version | head -n 2

mapfile -t files < <(git ls-files 'src/*.cpp' 'src/*/*.cpp' 'examples/*.cpp')
echo "linting ${#files[@]} translation units against $(pwd)/.clang-tidy" \
  "with $jobs worker(s)"

# Strided fan-out: worker w takes files w, w+jobs, w+2*jobs, ... Each
# worker records whether ANY of its invocations failed and reports that as
# its own exit status; the join below ORs them all together.
pids=()
for ((w = 0; w < jobs; ++w)); do
  (
    status=0
    for ((i = w; i < ${#files[@]}; i += jobs)); do
      "$tidy" -p "$build_dir" --quiet "${files[$i]}" || status=1
    done
    exit "$status"
  ) &
  pids+=("$!")
done

failed=0
for pid in "${pids[@]}"; do
  wait "$pid" || failed=1
done
if ((failed)); then
  echo "clang-tidy: findings reported above" >&2
  exit 1
fi
echo "clang-tidy: no findings"
