// Regenerates Fig. 5 (a-d): YAFIM speedup as the cluster grows from 4 to
// 12 nodes (16 to 48 cores) with the dataset fixed.
//
// Methodology: the mining run is recorded once per dataset (the engine's
// StageRecords are cluster-independent), then priced under each cluster
// size -- see sim/metrics.h. The paper reports near-linear scaling.
#include "common.h"

using namespace yafim;
using namespace yafim::benchharness;

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv, /*default_scale=*/1.0);

  std::printf("== Fig. 5: YAFIM speedup vs cores, dataset fixed "
              "(scale=%.2f) ==\n\n",
              args.scale);

  const char subfig[] = {'a', 'b', 'c', 'd'};
  auto benches = datagen::make_paper_benchmarks(args.scale);
  for (size_t i = 0; i < benches.size(); ++i) {
    const auto& bench = benches[i];
    sim::SimReport report;
    const auto run = run_yafim(bench, sim::ClusterConfig::paper(), &report);
    YAFIM_CHECK(run.itemsets.total() > 0, "nothing mined");

    std::printf("(%c) %s: Sup = %s\n", subfig[i], bench.name.c_str(),
                support_pct(bench.paper_min_support).c_str());
    Table table({"nodes", "cores", "time(s)", "speedup vs 16 cores"});
    double base = 0.0;
    for (u32 nodes : {4u, 6u, 8u, 10u, 12u}) {
      const sim::CostModel model{sim::ClusterConfig::with_nodes(nodes)};
      const double t = report.total_seconds(model);
      if (nodes == 4) base = t;
      table.add_row({Table::num(u64{nodes}), Table::num(u64{nodes * 4}),
                     Table::num(t), Table::num(base / t, 2) + "x"});
    }
    print_table(table, args);
    std::printf("\n");
  }
  std::printf("(paper: near-linear decrease of execution time in cores)\n");
  return 0;
}
