// byte_size(): estimated serialized size of a value, used to price shuffle
// and broadcast traffic. Customization point: overload byte_size() in the
// yafim::engine namespace (or specialise for your type) when the default
// (trivially-copyable => sizeof) is wrong.
#pragma once

#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/common.h"

namespace yafim::engine {

template <typename T>
  requires std::is_trivially_copyable_v<T>
constexpr u64 byte_size(const T&) {
  return sizeof(T);
}

inline u64 byte_size(const std::string& s) { return 8 + s.size(); }

// Forward declarations so the recursive cases can see each other regardless
// of nesting order (ADL does not apply: std:: is the associated namespace).
template <typename T>
u64 byte_size(const std::vector<T>& v);
template <typename A, typename B>
u64 byte_size(const std::pair<A, B>& p);

template <typename T>
u64 byte_size(const std::vector<T>& v) {
  u64 total = 8;  // length prefix
  if constexpr (std::is_trivially_copyable_v<T>) {
    total += v.size() * sizeof(T);
  } else {
    for (const auto& x : v) total += byte_size(x);
  }
  return total;
}

template <typename A, typename B>
u64 byte_size(const std::pair<A, B>& p) {
  return byte_size(p.first) + byte_size(p.second);
}

}  // namespace yafim::engine
