#include "stream/backpressure.h"

#include <algorithm>

#include "engine/lint.h"
#include "obs/metrics.h"

namespace yafim::stream {

void BackpressureController::observe(double latency_s, double interval_s,
                                     u64 deferred, BackpressureState* state,
                                     engine::PlanLinter* linter) {
  YAFIM_CHECK(state != nullptr, "controller needs state to steer");
  if (latency_s > options_.widen_threshold * interval_s) {
    // Escalate one step: widen first (results untouched), then slack.
    if (state->window_factor < options_.max_window_factor) {
      state->window_factor = std::min(options_.max_window_factor,
                                      state->window_factor * 2);
      ++widenings_;
      obs::count(obs::CounterId::kStreamWindowWidenings);
      return;
    }
    if (state->reverify_slack + 1e-12 < options_.max_slack) {
      state->reverify_slack =
          std::min(options_.max_slack,
                   state->reverify_slack + options_.slack_step);
      ++slack_raises_;
      obs::count(obs::CounterId::kStreamSlackRaises);
      if (linter) {
        linter->note_stream_backpressure(state->reverify_slack, deferred,
                                         latency_s, interval_s, "stream");
      }
      return;
    }
    return;  // ladder exhausted: bounded by design, reported via counters
  }
  if (latency_s < options_.relax_threshold * interval_s) {
    // De-escalate in reverse: drop slack before narrowing the window. The
    // last step snaps exactly to zero (accumulated 0.1-steps leave float
    // residue that would otherwise burn an extra relax round on epsilon).
    if (state->reverify_slack > 0.0) {
      state->reverify_slack =
          state->reverify_slack <= options_.slack_step + 1e-9
              ? 0.0
              : state->reverify_slack - options_.slack_step;
      return;
    }
    if (state->window_factor > 1) {
      state->window_factor = std::max<u32>(1, state->window_factor / 2);
      return;
    }
  }
}

}  // namespace yafim::stream
