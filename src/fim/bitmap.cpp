#include "fim/bitmap.h"

#include <algorithm>
#include <bit>

#include "fim/hash_tree.h"

namespace yafim::fim {

u64 and_popcount(const u64* const* rows, u32 k, u32 nwords) {
  u64 sum = 0;
  for (u32 w = 0; w < nwords; ++w) {
    u64 word = rows[0][w];
    for (u32 i = 1; i < k; ++i) word &= rows[i][w];
    sum += static_cast<u64>(std::popcount(word));
  }
  return sum;
}

VerticalBitmapIndex::VerticalBitmapIndex(
    std::span<const Transaction> transactions)
    : num_transactions_(static_cast<u32>(transactions.size())),
      words_per_row_(static_cast<u32>((transactions.size() + 63) / 64)) {
  // Pass 1: the distinct-item universe of this partition, ascending so slot
  // order (and therefore the arena layout) is deterministic.
  Item max_dense = 0;
  for (const Transaction& t : transactions) {
    for (Item i : t) {
      items_.push_back(i);
      if (i < kDenseSlotLimit) max_dense = std::max(max_dense, i);
    }
  }
  std::sort(items_.begin(), items_.end());
  items_.erase(std::unique(items_.begin(), items_.end()), items_.end());

  bool any_dense = false;
  for (u32 slot = 0; slot < items_.size(); ++slot) {
    const Item item = items_[slot];
    if (item < kDenseSlotLimit) {
      if (!any_dense) {
        dense_slots_.assign(size_t{max_dense} + 1, kNoSlot);
        any_dense = true;
      }
      dense_slots_[item] = slot;
    } else {
      sparse_slots_.emplace_back(item, slot);  // items_ sorted => sorted too
    }
  }

  // Pass 2: set bit `tid` in each contained item's row.
  words_.assign(u64{items_.size()} * words_per_row_, 0);
  for (u32 tid = 0; tid < transactions.size(); ++tid) {
    for (Item i : transactions[tid]) {
      u64* item_row = words_.data() + u64{slot_of(i)} * words_per_row_;
      item_row[tid >> 6] |= u64{1} << (tid & 63);
    }
  }

  // Building touches every item occurrence once (same unit as parsing) plus
  // the zero-fill of the arena at the word exchange rate.
  u64 occurrences = 0;
  for (const Transaction& t : transactions) occurrences += t.size();
  engine::work::add(occurrences + words_.size() / kBitmapWordsPerWorkUnit);
  obs::count(obs::CounterId::kBitmapIndexBytes, bytes());
}

u32 VerticalBitmapIndex::slot_of(Item item) const {
  if (item < kDenseSlotLimit) {
    return item < dense_slots_.size() ? dense_slots_[item] : kNoSlot;
  }
  const auto it = std::lower_bound(
      sparse_slots_.begin(), sparse_slots_.end(), item,
      [](const std::pair<Item, u32>& e, Item i) { return e.first < i; });
  if (it == sparse_slots_.end() || it->first != item) return kNoSlot;
  return it->second;
}

u64 VerticalBitmapIndex::bytes() const {
  return words_.size() * sizeof(u64) + items_.size() * sizeof(Item) +
         dense_slots_.size() * sizeof(u32) +
         sparse_slots_.size() * sizeof(std::pair<Item, u32>);
}

u64 VerticalBitmapIndex::support(const Item* items, u32 k) const {
  // k is small (mining depth); a fixed stack array keeps this allocation-free.
  constexpr u32 kMaxK = 64;
  const u64* rows[kMaxK];
  YAFIM_CHECK(k >= 1 && k <= kMaxK, "candidate size out of range");
  for (u32 i = 0; i < k; ++i) {
    rows[i] = row(items[i]);
    if (rows[i] == nullptr) return 0;
  }
  return and_popcount(rows, k, words_per_row_);
}

void VerticalBitmapIndex::count_candidates(const HashTree& tree,
                                           u64* cells) const {
  const u32 n = tree.size();
  if (n == 0) return;
  const u32 k = tree.k();
  u64 and_words = 0;
  u64 popcounts = 0;
  for (u32 ci = 0; ci < n; ++ci) {
    const u64 sup = support(tree.candidate_items(ci), k);
    cells[ci] += sup;
    // The absent-item early-out makes the true touched-word count
    // data-dependent; charging the full k*words keeps the sim price an
    // upper bound and deterministic either way.
    and_words += u64{k} * words_per_row_;
    popcounts += words_per_row_;
  }
  engine::work::add(n + (and_words + popcounts) / kBitmapWordsPerWorkUnit);
  if (obs::enabled()) {
    obs::count(obs::CounterId::kBitmapAndWords, and_words);
    obs::count(obs::CounterId::kBitmapPopcounts, popcounts);
  }
}

std::vector<u32> VerticalBitmapIndex::tidlist(Item item) const {
  std::vector<u32> out;
  const u64* words = row(item);
  if (words == nullptr) return out;
  for (u32 w = 0; w < words_per_row_; ++w) {
    u64 word = words[w];
    while (word) {
      const u32 bit = static_cast<u32>(std::countr_zero(word));
      out.push_back(w * 64 + bit);
      word &= word - 1;
    }
  }
  return out;
}

}  // namespace yafim::fim
