// TransactionDB: an in-memory transactional database D plus the
// serialization used to store it on the simulated HDFS (binary) and to
// exchange it with humans and other tools (the classic space-separated text
// format of the FIMI repository datasets).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "fim/itemset.h"
#include "util/common.h"

namespace yafim::fim {

struct DatasetStats {
  u64 num_transactions = 0;
  /// Number of distinct items actually present.
  u32 num_items = 0;
  /// Largest item id + 1 (the nominal universe size).
  u32 item_universe = 0;
  double avg_length = 0.0;
  double max_length = 0.0;
  /// avg_length / num_items: how dense a bitmap view would be.
  double density = 0.0;
};

class TransactionDB {
 public:
  TransactionDB() = default;

  /// Takes ownership of `transactions`; every transaction must already be
  /// canonical (sorted, unique) -- generators and parsers guarantee this,
  /// and it is CHECKed in debug builds.
  explicit TransactionDB(std::vector<Transaction> transactions);

  const std::vector<Transaction>& transactions() const { return tx_; }

  /// Move the transactions out (leaves the DB empty).
  std::vector<Transaction> release() { return std::move(tx_); }
  u64 size() const { return tx_.size(); }
  bool empty() const { return tx_.empty(); }

  DatasetStats stats() const;

  /// Absolute support count for a relative threshold, as ceil(frac * |D|)
  /// (an itemset is frequent iff sup >= this).
  u64 min_support_count(double min_support_frac) const;

  /// Exact support of one itemset by a full scan (test oracle; O(|D|)).
  u64 support(const Itemset& s) const;

  /// The "sizeup" transform from the paper's Fig. 4: the database
  /// replicated `times` times. Relative supports are unchanged.
  TransactionDB replicate(u32 times) const;

  // --- binary serialization (SimFS payloads) ---------------------------
  std::vector<u8> serialize() const;
  static TransactionDB deserialize(std::span<const u8> bytes);

  // --- text interop (one transaction per line, items space-separated) --
  std::string to_text() const;
  static TransactionDB from_text(const std::string& text);

 private:
  std::vector<Transaction> tx_;
};

}  // namespace yafim::fim
