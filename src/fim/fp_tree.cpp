#include "fim/fp_tree.h"

namespace yafim::fim {

namespace {

struct Miner {
  u64 min_count;
  const std::vector<Item>* rank_to_item;
  const std::function<void(const Itemset&, u64)>* emit;

  void mine(const FpTree& tree, std::vector<Item>& suffix,
            const std::function<bool(u32)>& root_filter) {
    // Process ranks bottom-up (least-frequent first), the classic order.
    for (u32 rank = tree.num_ranks(); rank-- > 0;) {
      if (suffix.empty() && root_filter && !root_filter(rank)) continue;
      const u64 support = tree.rank_count(rank);
      if (support < min_count) continue;
      engine::work::add(1);

      suffix.push_back((*rank_to_item)[rank]);
      Itemset found = suffix;
      canonicalize(found);
      (*emit)(found, support);

      // Conditional pattern base: prefix paths of every node of `rank`.
      FpTree conditional(rank);
      std::vector<u64> prefix_support(rank, 0);
      std::vector<std::pair<std::vector<u32>, u64>> paths;
      for (u32 n = tree.header(rank); n != FpTree::kNullNode;
           n = tree.node(n).next_same_item) {
        const u64 count = tree.node(n).count;
        std::vector<u32> path;
        for (u32 p = tree.node(n).parent; p != FpTree::kNullNode && p != 0;
             p = tree.node(p).parent) {
          engine::work::add(1);
          path.push_back(tree.node(p).rank);
          prefix_support[tree.node(p).rank] += count;
        }
        std::reverse(path.begin(), path.end());
        if (!path.empty()) paths.emplace_back(std::move(path), count);
      }
      // Drop ranks that are infrequent within the conditional base before
      // inserting (keeps conditional trees small).
      for (auto& [path, count] : paths) {
        std::vector<u32> kept;
        kept.reserve(path.size());
        for (u32 r : path) {
          if (prefix_support[r] >= min_count) kept.push_back(r);
        }
        if (!kept.empty()) conditional.insert(kept, count);
      }
      static const std::function<bool(u32)> kNoFilter;
      mine(conditional, suffix, kNoFilter);
      suffix.pop_back();
    }
  }
};

}  // namespace

void mine_fp_tree(const FpTree& tree, u64 min_count,
                  const std::vector<Item>& rank_to_item,
                  const std::function<bool(u32)>& root_filter,
                  const std::function<void(const Itemset&, u64)>& emit) {
  Miner miner{min_count, &rank_to_item, &emit};
  std::vector<Item> suffix;
  miner.mine(tree, suffix, root_filter);
}

}  // namespace yafim::fim
