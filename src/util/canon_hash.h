// Canonical hashing for DetSan replay comparison (engine/detsan.h).
//
// The determinism sanitizer re-executes sampled tasks with a permuted input
// order and must decide whether two outputs are "the same data". That needs
// two hash shapes over the same element hash:
//
//   canon_hash_ordered    sequence hash -- position matters. Used where the
//                         engine's contract fixes the output order
//                         (map_partitions replayed with the same input).
//   canon_hash_unordered  multiset hash -- commutative combine, so any
//                         permutation of equal elements hashes equal. Used
//                         for element-wise operators, where a pure function
//                         over a permuted input must yield the permuted
//                         (i.e. multiset-equal) output.
//
// Element hashing is canonical, not representational: floating-point +0.0
// and -0.0 hash equal (they compare equal, so a replay that flips the sign
// of a zero is not a divergence), and integral types hash through a fixed
// 64-bit widening so i32(5) in one build hashes like i64(5) in another.
// Built on the repo's XXH64 (util/checksum.h) and SplitMix64 (util/rng.h).
//
// Only the shapes the engine shuffles need hashing: arithmetic scalars,
// std::string, and pairs/vectors thereof, recursively. `is_canon_hashable_v`
// lets templated replay hooks compile for every element type and skip the
// ones they cannot hash (`if constexpr`).
#pragma once

#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/checksum.h"
#include "util/common.h"
#include "util/rng.h"

namespace yafim::util {

template <typename T, typename = void>
struct CanonHashable : std::bool_constant<std::is_arithmetic_v<T>> {};

template <>
struct CanonHashable<std::string> : std::true_type {};

// Component types decay before the recursive lookup: hash-map iteration
// yields std::pair<const K, V> and that must hash exactly like
// std::pair<K, V>.
template <typename A, typename B>
struct CanonHashable<std::pair<A, B>>
    : std::bool_constant<CanonHashable<std::decay_t<A>>::value &&
                         CanonHashable<std::decay_t<B>>::value> {};

template <typename E>
struct CanonHashable<std::vector<E>> : CanonHashable<std::decay_t<E>> {};

template <typename T>
inline constexpr bool is_canon_hashable_v = CanonHashable<std::decay_t<T>>::value;

namespace detail {
/// Domain-separation seeds so a vector of pairs never collides with a pair
/// of vectors holding the same scalars.
constexpr u64 kCanonScalarSeed = 0xC0DE0001;
constexpr u64 kCanonStringSeed = 0xC0DE0002;
constexpr u64 kCanonPairSeed = 0xC0DE0003;
constexpr u64 kCanonSeqSeed = 0xC0DE0004;
constexpr u64 kCanonSetSeed = 0xC0DE0005;
}  // namespace detail

template <typename T>
  requires std::is_arithmetic_v<T>
u64 canon_hash_value(T v) {
  u64 bits;
  if constexpr (std::is_floating_point_v<T>) {
    // Canonicalize sign of zero; NaNs keep their payload bits (two NaNs of
    // the same bit pattern hash equal, which is the strictest comparison a
    // replay can make without an equality that NaN would break anyway).
    const double d = (v == T{0}) ? 0.0 : static_cast<double>(v);
    static_assert(sizeof(d) == sizeof(bits));
    __builtin_memcpy(&bits, &d, sizeof(bits));
  } else if constexpr (std::is_signed_v<T>) {
    bits = static_cast<u64>(static_cast<i64>(v));
  } else {
    bits = static_cast<u64>(v);
  }
  return mix64(bits ^ detail::kCanonScalarSeed);
}

inline u64 canon_hash_value(const std::string& s) {
  return xxh64(s.data(), s.size(), detail::kCanonStringSeed);
}

template <typename A, typename B>
  requires(is_canon_hashable_v<A> && is_canon_hashable_v<B>)
u64 canon_hash_value(const std::pair<A, B>& p);

template <typename E>
  requires is_canon_hashable_v<E>
u64 canon_hash_value(const std::vector<E>& v);

template <typename A, typename B>
  requires(is_canon_hashable_v<A> && is_canon_hashable_v<B>)
u64 canon_hash_value(const std::pair<A, B>& p) {
  u64 h = detail::kCanonPairSeed;
  h = mix64(h ^ canon_hash_value(p.first));
  h = mix64(h ^ canon_hash_value(p.second));
  return h;
}

template <typename E>
  requires is_canon_hashable_v<E>
u64 canon_hash_value(const std::vector<E>& v) {
  u64 h = mix64(detail::kCanonSeqSeed ^ v.size());
  for (const E& e : v) h = mix64(h ^ canon_hash_value(e));
  return h;
}

/// Order-sensitive hash of any iterable of hashable elements.
template <typename C>
u64 canon_hash_ordered(const C& c) {
  u64 h = mix64(detail::kCanonSeqSeed);
  u64 n = 0;
  for (const auto& e : c) {
    h = mix64(h ^ canon_hash_value(e));
    ++n;
  }
  return mix64(h ^ n);
}

/// Order-insensitive (multiset) hash: sum + xor of per-element mixes are
/// both commutative, so any permutation of equal elements hashes equal,
/// while dropping/duplicating an element moves the sum.
template <typename C>
u64 canon_hash_unordered(const C& c) {
  u64 sum = 0;
  u64 xr = 0;
  u64 n = 0;
  for (const auto& e : c) {
    const u64 h = mix64(canon_hash_value(e) ^ detail::kCanonSetSeed);
    sum += h;
    xr ^= h;
    ++n;
  }
  return mix64(sum ^ mix64(xr) ^ n);
}

}  // namespace yafim::util
