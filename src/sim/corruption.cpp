#include "sim/corruption.h"

#include <cstdlib>

#include "util/rng.h"

namespace yafim::sim {

namespace {

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value && *value ? std::atof(value) : fallback;
}

u64 env_u64(const char* name, u64 fallback) {
  const char* value = std::getenv(name);
  return value && *value ? std::strtoull(value, nullptr, 10) : fallback;
}

/// Uniform [0, 1) from a chain of mixed salts (same construction as the
/// task-level injector's draw_uniform).
double draw_uniform(u64 seed, u64 a, u64 b, u64 c) {
  const u64 h = mix64(seed ^ mix64(a ^ mix64(b ^ mix64(c))));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

CorruptionProfile CorruptionProfile::from_env() {
  CorruptionProfile p;
  p.seed = env_u64("YAFIM_FAULT_SEED", p.seed);
  p.block_p = env_double("YAFIM_FAULT_CORRUPT_BLOCK_P", p.block_p);
  p.cached_p = env_double("YAFIM_FAULT_CORRUPT_CACHED_P", p.cached_p);
  return p;
}

bool CorruptionProfile::draw_block(u64 path_hash, u64 block,
                                   u32 attempt) const {
  if (block_p <= 0.0) return false;
  const u64 salt = (u64{attempt} << 48) ^ block;
  return draw_uniform(seed, path_hash, salt, 0xB17F11) < block_p;
}

u64 CorruptionProfile::flip_bit(u64 path_hash, u64 block, u32 attempt,
                                u64 block_bytes) const {
  YAFIM_CHECK(block_bytes > 0, "flip_bit() needs a non-empty block");
  const u64 salt = (u64{attempt} << 48) ^ block;
  const u64 h = mix64(seed ^ mix64(path_hash ^ mix64(salt ^ 0xF11BB17)));
  return h % (block_bytes * 8);
}

bool CorruptionProfile::draw_cached(u64 rdd, u32 partition,
                                    u64 access) const {
  if (cached_p <= 0.0) return false;
  const u64 salt = (u64{partition} << 32) ^ access;
  return draw_uniform(seed, rdd, salt, 0xCAC4ED) < cached_p;
}

}  // namespace yafim::sim
