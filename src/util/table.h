// ASCII table / CSV printer used by the benchmark harnesses to regenerate
// the paper's tables and figure series in a readable, diffable form.
#pragma once

#include <string>
#include <vector>

#include "util/common.h"

namespace yafim {

/// Collects rows of string cells and renders them either as an aligned
/// ASCII table (for humans) or CSV (for plotting scripts).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row. Must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string num(u64 v);

  std::string to_ascii() const;
  std::string to_csv() const;

  size_t rows() const { return rows_.size(); }
  size_t cols() const { return header_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(size_t i) const { return rows_.at(i); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace yafim
