// PFP -- Parallel FP-Growth (Li et al., RecSys 2008): the algorithm behind
// Spark MLlib's FPGrowth, i.e. what the ecosystem actually adopted for the
// problem this paper tackles. Included as the strongest "what came after"
// comparison point for YAFIM.
//
//   1. one data pass counts item frequencies (like YAFIM's Phase I);
//   2. frequent items, ranked by frequency, are divided into G groups;
//   3. *group-dependent transactions*: each transaction is replayed as at
//      most one rank-prefix per group it touches, shuffled to that group;
//   4. each group independently builds a local FP-tree from its
//      conditional transactions and mines it, emitting only itemsets whose
//      least-frequent item belongs to the group (so groups partition the
//      output space exactly -- no duplicates, nothing missed).
//
// Two shuffles total, no candidate generation, no per-level passes.
#pragma once

#include <string>

#include "engine/context.h"
#include "fim/dataset.h"
#include "fim/result.h"
#include "simfs/simfs.h"

namespace yafim::fim {

struct PfpOptions {
  double min_support = 0.1;
  /// Number of item groups = independent mining tasks (0 = one per
  /// simulated core).
  u32 num_groups = 0;
  /// RDD partitions for the transactions dataset (0 = context default).
  u32 partitions = 0;
};

struct PfpRun {
  MiningRun run;
  u32 groups = 0;
  /// Total group-dependent transactions shuffled (the algorithm's cost
  /// centre: bounded by |D| * groups, typically far less).
  u64 conditional_transactions = 0;
};

/// Mine the dataset at `input_path` (serialized TransactionDB) with PFP.
/// `run.passes` has two entries: item counting and group mining.
PfpRun pfp_mine(engine::Context& ctx, simfs::SimFS& fs,
                const std::string& input_path, const PfpOptions& options);

/// Convenience overload staging `db` onto `fs` first.
PfpRun pfp_mine(engine::Context& ctx, simfs::SimFS& fs,
                const TransactionDB& db, const PfpOptions& options);

}  // namespace yafim::fim
