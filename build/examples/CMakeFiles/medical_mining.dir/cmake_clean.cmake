file(REMOVE_RECURSE
  "CMakeFiles/medical_mining.dir/medical_mining.cpp.o"
  "CMakeFiles/medical_mining.dir/medical_mining.cpp.o.d"
  "medical_mining"
  "medical_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medical_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
