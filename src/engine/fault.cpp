#include "engine/fault.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "obs/trace.h"
#include "util/rng.h"

namespace yafim::engine {

namespace {

// Strict YAFIM_FAULT_* env parsing. A typo'd value used to atof/strtoull to
// zero, silently disabling the axis -- the injection run would pass CI while
// testing nothing. Malformed values now die loudly with one structured line.
[[noreturn]] void reject_env(const char* name, const char* value,
                             const char* why) {
  std::fprintf(stderr, "yafim: fault env %s='%s' rejected: %s\n", name, value,
               why);
  std::abort();
}

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (!value || !*value) return fallback;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0' || errno == ERANGE) {
    reject_env(name, value, "not a finite number");
  }
  return parsed;
}

double env_probability(const char* name, double fallback) {
  const double p = env_double(name, fallback);
  if (p < 0.0 || p > 1.0) {
    reject_env(name, std::getenv(name), "probability must be in [0, 1]");
  }
  return p;
}

double env_nonneg(const char* name, double fallback) {
  const double v = env_double(name, fallback);
  if (v < 0.0) reject_env(name, std::getenv(name), "must be >= 0");
  return v;
}

u64 env_u64(const char* name, u64 fallback) {
  const char* value = std::getenv(name);
  if (!value || !*value) return fallback;
  char* end = nullptr;
  errno = 0;
  if (*value == '-') reject_env(name, value, "must be a non-negative integer");
  const u64 parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE) {
    reject_env(name, value, "must be a non-negative integer");
  }
  return parsed;
}

}  // namespace

FaultProfile FaultProfile::from_env() {
  FaultProfile p;
  p.seed = env_u64("YAFIM_FAULT_SEED", p.seed);
  p.task_failure_p =
      env_probability("YAFIM_FAULT_TASK_FAILURE_P", p.task_failure_p);
  p.straggler_p = env_probability("YAFIM_FAULT_STRAGGLER_P", p.straggler_p);
  p.straggler_slowdown =
      env_nonneg("YAFIM_FAULT_STRAGGLER_SLOWDOWN", p.straggler_slowdown);
  p.max_task_attempts = static_cast<u32>(
      env_u64("YAFIM_FAULT_MAX_TASK_ATTEMPTS", p.max_task_attempts));
  p.max_stage_attempts = static_cast<u32>(
      env_u64("YAFIM_FAULT_MAX_STAGE_ATTEMPTS", p.max_stage_attempts));
  p.blacklist_after = static_cast<u32>(
      env_u64("YAFIM_FAULT_BLACKLIST_AFTER", p.blacklist_after));
  p.speculation_multiple =
      env_nonneg("YAFIM_FAULT_SPECULATION_MULTIPLE", p.speculation_multiple);
  p.mem_shrink_pass = static_cast<u32>(
      env_u64("YAFIM_FAULT_MEM_SHRINK_PASS", p.mem_shrink_pass));
  p.mem_shrink_factor =
      env_double("YAFIM_FAULT_MEM_SHRINK_FACTOR", p.mem_shrink_factor);
  if (p.mem_shrink_factor < 0.0 || p.mem_shrink_factor > 1.0) {
    reject_env("YAFIM_FAULT_MEM_SHRINK_FACTOR",
               std::getenv("YAFIM_FAULT_MEM_SHRINK_FACTOR"),
               "shrink factor must be in [0, 1]");
  }
  p.mem_shrink_node = static_cast<u32>(
      env_u64("YAFIM_FAULT_MEM_SHRINK_NODE", p.mem_shrink_node));
  p.stream_kill_batch = static_cast<u32>(
      env_u64("YAFIM_FAULT_STREAM_KILL_BATCH", p.stream_kill_batch));
  p.stream_kill_phase = static_cast<u32>(
      env_u64("YAFIM_FAULT_STREAM_KILL_PHASE", p.stream_kill_phase));
  p.stream_seed = env_u64("YAFIM_FAULT_STREAM_SEED", p.stream_seed);
  p.corrupt = sim::CorruptionProfile::from_env();
  return p;
}

StageFailedError::StageFailedError(std::string stage, u32 failed_tasks,
                                   u32 stage_attempts)
    : std::runtime_error("stage '" + stage + "' failed: " +
                         std::to_string(failed_tasks) +
                         " task(s) exhausted their attempt budget after " +
                         std::to_string(stage_attempts) + " stage attempt(s)"),
      stage_(std::move(stage)),
      failed_tasks_(failed_tasks),
      stage_attempts_(stage_attempts) {}

FaultInjector::FaultInjector(const sim::ClusterConfig& cluster,
                             FaultProfile profile)
    : nodes_(cluster.nodes),
      profile_(std::move(profile)),
      cache_budget_per_node_(cluster.executor_cache_bytes),
      node_lru_(nodes_),
      node_cached_bytes_(nodes_, 0),
      node_failures_(nodes_, 0),
      node_blacklisted_(nodes_, false) {
  YAFIM_CHECK(nodes_ > 0, "a cluster needs at least one node");
}

void FaultInjector::register_holder(CacheHolder* holder) {
  util::MutexLock lock(mutex_);
  holders_[holder->holder_id()] = holder;
}

void FaultInjector::unregister_holder(CacheHolder* holder) {
  util::MutexLock lock(mutex_);
  auto it = holders_.find(holder->holder_id());
  if (it == holders_.end() || it->second != holder) return;
  holders_.erase(it);
  // Forget any LRU entries the departing cache still had admitted.
  for (u32 node = 0; node < nodes_; ++node) {
    auto& lru = node_lru_[node];
    for (auto e = lru.begin(); e != lru.end();) {
      if (e->rdd_id != holder->holder_id()) {
        ++e;
        continue;
      }
      node_cached_bytes_[node] -= e->bytes;
      entries_.erase(entry_key(e->rdd_id, e->partition));
      e = lru.erase(e);
    }
  }
}

void FaultInjector::note_cache_insert(u32 rdd_id, u32 partition, u64 bytes) {
  if (!cache_budget_enabled()) return;
  util::MutexLock lock(mutex_);
  if (!holders_.count(rdd_id)) return;  // raced with unregister
  const u64 key = entry_key(rdd_id, partition);
  const u32 node = partition % nodes_;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Re-insert of a tracked partition (benign race): refresh bytes + LRU.
    node_cached_bytes_[node] -= it->second.second->bytes;
    node_lru_[node].erase(it->second.second);
    entries_.erase(it);
  }
  node_lru_[node].push_back(CacheEntry{rdd_id, partition, bytes});
  entries_.emplace(key, std::make_pair(node, std::prev(node_lru_[node].end())));
  node_cached_bytes_[node] += bytes;
  evict_over_budget_locked(node);
}

void FaultInjector::note_cache_hit(u32 rdd_id, u32 partition) {
  if (!cache_budget_enabled()) return;
  util::MutexLock lock(mutex_);
  auto it = entries_.find(entry_key(rdd_id, partition));
  if (it == entries_.end()) return;
  auto& lru = node_lru_[it->second.first];
  lru.splice(lru.end(), lru, it->second.second);  // move to MRU position
}

void FaultInjector::forget_entry_locked(u32 rdd_id, u32 partition) {
  auto it = entries_.find(entry_key(rdd_id, partition));
  if (it == entries_.end()) return;
  const u32 node = it->second.first;
  node_cached_bytes_[node] -= it->second.second->bytes;
  node_lru_[node].erase(it->second.second);
  entries_.erase(it);
}

void FaultInjector::evict_over_budget_locked(u32 node) {
  auto& lru = node_lru_[node];
  while (node_cached_bytes_[node] > cache_budget_per_node_ && !lru.empty()) {
    const CacheEntry victim = lru.front();
    auto holder = holders_.find(victim.rdd_id);
    if (holder != holders_.end()) holder->second->drop_cached(victim.partition);
    node_cached_bytes_[node] -= victim.bytes;
    entries_.erase(entry_key(victim.rdd_id, victim.partition));
    lru.pop_front();
    cache_evictions_.fetch_add(1, std::memory_order_relaxed);
    cache_evicted_bytes_.fetch_add(victim.bytes, std::memory_order_relaxed);
    obs::count(obs::CounterId::kCacheEvictions);
    obs::count(obs::CounterId::kCacheEvictedBytes, victim.bytes);
    obs::instant("fault", "cache_evict",
                 {{"rdd", victim.rdd_id},
                  {"partition", victim.partition},
                  {"node", node},
                  {"bytes", victim.bytes}});
  }
}

void FaultInjector::note_cache_corruption(u32 rdd_id, u32 partition) {
  cache_corruptions_.fetch_add(1, std::memory_order_relaxed);
  obs::count(obs::CounterId::kCorruptRepairedLineage);
  obs::instant("fault", "cache_corrupt",
               {{"rdd", rdd_id}, {"partition", partition}});
  if (!cache_budget_enabled()) return;
  util::MutexLock lock(mutex_);
  forget_entry_locked(rdd_id, partition);
}

bool FaultInjector::fail_partition(u32 rdd_id, u32 partition) {
  util::MutexLock lock(mutex_);
  auto it = holders_.find(rdd_id);
  if (it == holders_.end()) return false;
  const bool dropped = it->second->drop_cached(partition);
  if (dropped) {
    forget_entry_locked(rdd_id, partition);
    obs::count(obs::CounterId::kFaultPartitionsDropped);
    obs::instant("fault", "fail_partition",
                 {{"rdd", rdd_id}, {"partition", partition}});
  }
  return dropped;
}

u64 FaultInjector::kill_executor(u32 node) {
  YAFIM_CHECK(node < nodes_, "no such node");
  u64 lost = 0;
  {
    // Dropping under the lock keeps the holder pointers valid: ~Node blocks
    // in unregister_holder until this loop is done with them.
    util::MutexLock lock(mutex_);
    for (auto& [id, holder] : holders_) {
      for (u32 p = node; p < holder->holder_partitions(); p += nodes_) {
        if (holder->drop_cached(p)) {
          forget_entry_locked(id, p);
          ++lost;
        }
      }
    }
  }
  obs::count(obs::CounterId::kFaultPartitionsDropped, lost);
  obs::instant("fault", "kill_executor",
               {{"node", node}, {"partitions_lost", lost}});
  return lost;
}

double FaultInjector::draw_uniform(u64 a, u64 b, u64 c) const {
  const u64 h = mix64(profile_.seed ^ mix64(a ^ mix64(b ^ mix64(c))));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultInjector::draw_task_failure(u64 stage, u32 stage_attempt, u32 task,
                                      u32 attempt, u32 node) const {
  double p = profile_.task_failure_p;
  if (node < profile_.node_failure_bias.size()) {
    p *= profile_.node_failure_bias[node];
  }
  if (p <= 0.0) return false;
  const u64 salt = (u64{stage_attempt} << 48) | (u64{task} << 16) | attempt;
  return draw_uniform(stage, salt, 0xFA11) < p;
}

bool FaultInjector::draw_straggler(u64 stage, u32 task, u32 copy) const {
  if (profile_.straggler_p <= 0.0) return false;
  const u64 salt = (u64{copy} << 32) | task;
  return draw_uniform(stage, salt, 0x57A6) < profile_.straggler_p;
}

u32 FaultInjector::node_of(u32 index) const {
  const u32 home = index % nodes_;
  if (blacklisted_count_.load(std::memory_order_relaxed) == 0) return home;
  util::MutexLock lock(mutex_);
  for (u32 step = 0; step < nodes_; ++step) {
    const u32 node = (home + step) % nodes_;
    if (!node_blacklisted_[node]) return node;
  }
  return home;  // unreachable: at least one node stays live
}

void FaultInjector::note_task_failure(u32 node) {
  task_failures_.fetch_add(1, std::memory_order_relaxed);
  obs::count(obs::CounterId::kTaskFailuresInjected);
  if (profile_.blacklist_after == 0) return;
  util::MutexLock lock(mutex_);
  YAFIM_DCHECK(node < nodes_, "failure on unknown node");
  if (node_blacklisted_[node]) return;
  if (++node_failures_[node] < profile_.blacklist_after) return;
  // Never blacklist the last live node: someone has to run the tasks.
  if (blacklisted_count_.load(std::memory_order_relaxed) + 1 >= nodes_) return;
  node_blacklisted_[node] = true;
  blacklisted_count_.fetch_add(1, std::memory_order_relaxed);
  obs::count(obs::CounterId::kNodesBlacklisted);
  obs::instant("fault", "blacklist_node",
               {{"node", node}, {"failures", node_failures_[node]}});
}

void FaultInjector::reset_epoch_state() {
  util::MutexLock lock(mutex_);
  std::fill(node_failures_.begin(), node_failures_.end(), 0);
  std::fill(node_blacklisted_.begin(), node_blacklisted_.end(), false);
  blacklisted_count_.store(0, std::memory_order_relaxed);
}

}  // namespace yafim::engine
