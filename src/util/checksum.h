// XXH64: fast non-cryptographic checksum used for data-integrity checks.
//
// Every SimFS block and every checkpoint snapshot carries an XXH64 digest of
// its payload, verified on read. XXH64 detects any single bit flip (and all
// burst errors shorter than 64 bits) while running at near-memcpy speed, so
// the clean-path verify cost is a small fraction of the read itself
// (measured by bench/bench_integrity.cpp). Header-only; no state.
#pragma once

#include <cstring>

#include "util/common.h"

namespace yafim {

namespace detail {

constexpr u64 kXxhPrime1 = 0x9E3779B185EBCA87ULL;
constexpr u64 kXxhPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr u64 kXxhPrime3 = 0x165667B19E3779F9ULL;
constexpr u64 kXxhPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr u64 kXxhPrime5 = 0x27D4EB2F165667C5ULL;

inline u64 xxh_rotl(u64 x, int r) { return (x << r) | (x >> (64 - r)); }

inline u64 xxh_read64(const u8* p) {
  u64 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline u32 xxh_read32(const u8* p) {
  u32 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline u64 xxh_round(u64 acc, u64 input) {
  acc += input * kXxhPrime2;
  acc = xxh_rotl(acc, 31);
  return acc * kXxhPrime1;
}

inline u64 xxh_merge_round(u64 h, u64 v) {
  h ^= xxh_round(0, v);
  return h * kXxhPrime1 + kXxhPrime4;
}

}  // namespace detail

/// XXH64 digest of `len` bytes.
inline u64 xxh64(const void* data, size_t len, u64 seed = 0) {
  using namespace detail;
  const u8* p = static_cast<const u8*>(data);
  const u8* const end = p + len;
  u64 h;

  if (len >= 32) {
    u64 v1 = seed + kXxhPrime1 + kXxhPrime2;
    u64 v2 = seed + kXxhPrime2;
    u64 v3 = seed;
    u64 v4 = seed - kXxhPrime1;
    const u8* const limit = end - 32;
    do {
      v1 = xxh_round(v1, xxh_read64(p));
      v2 = xxh_round(v2, xxh_read64(p + 8));
      v3 = xxh_round(v3, xxh_read64(p + 16));
      v4 = xxh_round(v4, xxh_read64(p + 24));
      p += 32;
    } while (p <= limit);
    h = xxh_rotl(v1, 1) + xxh_rotl(v2, 7) + xxh_rotl(v3, 12) +
        xxh_rotl(v4, 18);
    h = xxh_merge_round(h, v1);
    h = xxh_merge_round(h, v2);
    h = xxh_merge_round(h, v3);
    h = xxh_merge_round(h, v4);
  } else {
    h = seed + kXxhPrime5;
  }

  h += static_cast<u64>(len);
  while (p + 8 <= end) {
    h ^= xxh_round(0, xxh_read64(p));
    h = xxh_rotl(h, 27) * kXxhPrime1 + kXxhPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<u64>(xxh_read32(p)) * kXxhPrime1;
    h = xxh_rotl(h, 23) * kXxhPrime2 + kXxhPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<u64>(*p) * kXxhPrime5;
    h = xxh_rotl(h, 11) * kXxhPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kXxhPrime2;
  h ^= h >> 29;
  h *= kXxhPrime3;
  h ^= h >> 32;
  return h;
}

/// XXH64 of a string's bytes (path hashing for corruption draws).
inline u64 xxh64(std::string_view s, u64 seed = 0) {
  return xxh64(s.data(), s.size(), seed);
}

}  // namespace yafim
