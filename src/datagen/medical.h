// Synthetic medical-case data (paper §V-D).
//
// The paper applies YAFIM to a proprietary medical-case dataset to mine
// relationships among medical entities (diagnoses, drugs), arguing the
// resemblance between a medical case and a sales basket. That dataset is
// not available, so we synthesise cases with the same structure: each case
// is a set of medical codes, with comorbidity clusters (hypertension +
// statin + aspirin, diabetes + metformin + neuropathy, ...) co-occurring
// far above chance, plus a tail of sporadic codes.
#pragma once

#include "fim/dataset.h"
#include "util/common.h"

namespace yafim::datagen {

struct MedicalParams {
  /// Number of medical cases (transactions).
  u64 num_cases = 40000;
  /// Code universe (diagnoses + drugs + procedures).
  u32 num_codes = 600;
  /// Number of comorbidity clusters.
  u32 num_clusters = 10;
  /// Cluster sizes are drawn in [min, max].
  u32 min_cluster_size = 3;
  u32 max_cluster_size = 7;
  /// Prevalence of the most common cluster; cluster c has prevalence
  /// base_prevalence * decay^c.
  double base_prevalence = 0.45;
  double prevalence_decay = 0.72;
  /// Probability a cluster member is omitted from a case that has the
  /// cluster (incomplete records).
  double dropout = 0.12;
  /// Mean number of sporadic extra codes per case.
  double sporadic_mean = 4.0;
  /// Skew of sporadic code popularity.
  double sporadic_skew = 2.5;
  u64 seed = 7;
};

struct MedicalDataset {
  fim::TransactionDB db;
  /// The comorbidity clusters that were embedded (ground truth for tests
  /// and for interpreting mined rules).
  std::vector<fim::Itemset> clusters;
  std::vector<double> prevalence;
};

MedicalDataset generate_medical(const MedicalParams& params);

}  // namespace yafim::datagen
