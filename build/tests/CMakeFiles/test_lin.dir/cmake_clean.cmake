file(REMOVE_RECURSE
  "CMakeFiles/test_lin.dir/test_lin.cpp.o"
  "CMakeFiles/test_lin.dir/test_lin.cpp.o.d"
  "test_lin"
  "test_lin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
