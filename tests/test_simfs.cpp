// Unit tests for the simulated HDFS.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "simfs/simfs.h"

namespace yafim::simfs {
namespace {

std::vector<u8> bytes(std::initializer_list<int> xs) {
  std::vector<u8> v;
  for (int x : xs) v.push_back(static_cast<u8>(x));
  return v;
}

TEST(SimFS, WriteReadRoundTrip) {
  SimFS fs(sim::ClusterConfig::paper());
  const auto payload = bytes({1, 2, 3, 4, 5});
  fs.write("a/b", payload);
  EXPECT_TRUE(fs.exists("a/b"));
  double seconds = -1;
  EXPECT_EQ(fs.read("a/b", &seconds), payload);
  EXPECT_GT(seconds, 0.0);
}

TEST(SimFS, OverwriteReplaces) {
  SimFS fs(sim::ClusterConfig::paper());
  fs.write("f", bytes({1}));
  fs.write("f", bytes({2, 3}));
  EXPECT_EQ(fs.read("f"), bytes({2, 3}));
}

TEST(SimFS, MissingFileHandling) {
  SimFS fs(sim::ClusterConfig::paper());
  EXPECT_FALSE(fs.exists("nope"));
  EXPECT_FALSE(fs.stat("nope").has_value());
  EXPECT_FALSE(fs.remove("nope"));
  try {
    (void)fs.read("nope");
    FAIL() << "read of a missing path must throw";
  } catch (const SimFSError& e) {
    EXPECT_EQ(e.path(), "nope");
    EXPECT_EQ(e.kind(), SimFSErrorKind::kNotFound);
  }
}

TEST(SimFS, RemoveWorks) {
  SimFS fs(sim::ClusterConfig::paper());
  fs.write("x", bytes({9}));
  EXPECT_TRUE(fs.remove("x"));
  EXPECT_FALSE(fs.exists("x"));
}

TEST(SimFS, StatReportsSizeAndBlocks) {
  sim::ClusterConfig cluster;
  cluster.hdfs_block_bytes = 4;
  SimFS fs(cluster);
  fs.write("small", bytes({1, 2, 3}));
  fs.write("exact", bytes({1, 2, 3, 4}));
  fs.write("big", bytes({1, 2, 3, 4, 5}));
  EXPECT_EQ(fs.stat("small")->blocks, 1u);
  EXPECT_EQ(fs.stat("exact")->blocks, 1u);
  EXPECT_EQ(fs.stat("big")->blocks, 2u);
  EXPECT_EQ(fs.stat("big")->bytes, 5u);
}

TEST(SimFS, ListByPrefix) {
  SimFS fs(sim::ClusterConfig::paper());
  fs.write("dir/a", {});
  fs.write("dir/b", {});
  fs.write("dirx", {});
  fs.write("other", {});
  const auto listed = fs.list("dir/");
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0], "dir/a");
  EXPECT_EQ(listed[1], "dir/b");
  EXPECT_EQ(fs.list("").size(), 4u);
  EXPECT_TRUE(fs.list("zzz").empty());
}

TEST(SimFS, TrafficCounters) {
  SimFS fs(sim::ClusterConfig::paper());
  fs.write("a", std::vector<u8>(100));
  fs.write("b", std::vector<u8>(50));
  (void)fs.read("a");
  (void)fs.read("a");
  EXPECT_EQ(fs.total_bytes_written(), 150u);
  EXPECT_EQ(fs.total_bytes_read(), 200u);
}

TEST(SimFS, WriteCostExceedsReadCost) {
  SimFS fs(sim::ClusterConfig::paper());
  const double write_s = fs.write("w", std::vector<u8>(10u << 20));
  double read_s = 0;
  (void)fs.read("w", &read_s);
  EXPECT_GT(write_s, read_s);  // 3x replication + network pipeline
}

TEST(SimFS, EmptyFile) {
  SimFS fs(sim::ClusterConfig::paper());
  fs.write("empty", {});
  EXPECT_TRUE(fs.read("empty").empty());
  EXPECT_EQ(fs.stat("empty")->bytes, 0u);
  EXPECT_EQ(fs.stat("empty")->blocks, 1u);
}

TEST(SimFS, CleanReadsAreVerified) {
  sim::ClusterConfig cluster;
  cluster.hdfs_block_bytes = 16;
  // Pin injection off so the zero-corruption assertions hold when the
  // whole binary runs under the CI fault matrix.
  SimFS fs(cluster, sim::CorruptionProfile{});
  fs.write("f", std::vector<u8>(64, 3));  // 4 blocks
  (void)fs.read("f");
  const IntegrityStats s = fs.integrity();
  EXPECT_EQ(s.blocks_verified, 4u);
  EXPECT_EQ(s.corrupt_injected, 0u);
  EXPECT_EQ(s.corrupt_detected, 0u);
}

TEST(SimFS, InjectedCorruptionIsDetectedAndRepaired) {
  sim::ClusterConfig cluster;
  cluster.hdfs_block_bytes = 16;
  sim::CorruptionProfile prof;
  prof.seed = 7;
  prof.block_p = 0.05;
  SimFS fs(cluster, prof);

  std::vector<u8> payload(64 * 16);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<u8>(i * 37);
  }
  fs.write("f", payload);

  // Run enough reads that the 5% per-block rate deterministically fires.
  double clean_seconds = 0;
  (void)fs.read("f", &clean_seconds);  // counters below include this read
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(fs.read("f"), payload) << "repair must return pristine bytes";
  }

  const IntegrityStats s = fs.integrity();
  EXPECT_GT(s.corrupt_injected, 0u) << "rate/seed chosen to inject";
  // The acceptance invariant: nothing injected goes undetected, and every
  // detection was healed from another replica (none unrecoverable at this
  // rate -- a block needs all 3 replicas corrupt to fail).
  EXPECT_EQ(s.corrupt_detected, s.corrupt_injected);
  EXPECT_EQ(s.repaired_by_replica, s.corrupt_detected);
  EXPECT_EQ(s.unrecoverable, 0u);
}

TEST(SimFS, CorruptionDrawsAreDeterministic) {
  sim::ClusterConfig cluster;
  cluster.hdfs_block_bytes = 16;
  sim::CorruptionProfile prof;
  prof.seed = 7;
  prof.block_p = 0.05;

  auto run = [&] {
    SimFS fs(cluster, prof);
    fs.write("f", std::vector<u8>(64 * 16, 9));
    for (int i = 0; i < 10; ++i) (void)fs.read("f");
    return fs.integrity();
  };
  const IntegrityStats a = run();
  const IntegrityStats b = run();
  EXPECT_EQ(a.corrupt_injected, b.corrupt_injected);
  EXPECT_EQ(a.corrupt_detected, b.corrupt_detected);
  EXPECT_EQ(a.repaired_by_replica, b.repaired_by_replica);
  EXPECT_GT(a.corrupt_injected, 0u);
}

TEST(SimFS, StoredDamageIsUnrecoverable) {
  SimFS fs(sim::ClusterConfig::paper());
  fs.write("f", bytes({1, 2, 3, 4}));
  fs.debug_corrupt("f", 2, 5);  // damages the payload under all replicas
  try {
    (void)fs.read("f");
    FAIL() << "all-replica damage must throw";
  } catch (const SimFSError& e) {
    EXPECT_EQ(e.path(), "f");
    EXPECT_EQ(e.kind(), SimFSErrorKind::kCorrupt);
  }
  EXPECT_GE(fs.integrity().unrecoverable, 1u);

  // The error names the damage precisely: failing block index and how many
  // replicas were tried, both as accessors and in what() (CI crash logs
  // grep the rendered form without a rerun).
  try {
    (void)fs.read("f");
    FAIL() << "all-replica damage must throw";
  } catch (const SimFSError& e) {
    EXPECT_EQ(e.block(), 0u);
    EXPECT_EQ(e.replicas(), fs.cluster().hdfs_replication);
    const std::string what = e.what();
    EXPECT_NE(what.find("block 0"), std::string::npos) << what;
    EXPECT_NE(what.find("all 3 replicas failed verification"),
              std::string::npos)
        << what;
  }

  // With verification off (the microbenchmark baseline) the damage flows
  // through silently -- which is exactly what the checksums exist to stop.
  fs.set_verify_checksums(false);
  const auto raw = fs.read("f");
  EXPECT_NE(raw, bytes({1, 2, 3, 4}));
}

TEST(SimFS, ReplicaRetriesCostExtraSimTime) {
  sim::ClusterConfig cluster;
  cluster.hdfs_block_bytes = 16;
  sim::CorruptionProfile prof;
  prof.seed = 7;
  prof.block_p = 0.05;

  SimFS clean(cluster, sim::CorruptionProfile{});
  SimFS faulty(cluster, prof);
  const std::vector<u8> payload(64 * 16, 1);
  clean.write("f", payload);
  faulty.write("f", payload);

  double clean_s = 0, faulty_total = 0;
  (void)clean.read("f", &clean_s);
  for (int i = 0; i < 10; ++i) {
    double s = 0;
    EXPECT_EQ(faulty.read("f", &s), payload);
    faulty_total += s;
  }
  ASSERT_GT(faulty.integrity().repaired_by_replica, 0u);
  EXPECT_GT(faulty_total, 10 * clean_s);  // repairs are priced, not free
}

TEST(SimFS, ConcurrentAccessIsSafe) {
  SimFS fs(sim::ClusterConfig::paper());
  fs.write("shared", std::vector<u8>(1000, 7));
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&fs, &failures, t] {
      for (int i = 0; i < 50; ++i) {
        if (fs.read("shared").size() != 1000) failures.fetch_add(1);
        fs.write("private/" + std::to_string(t), std::vector<u8>(10));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(fs.list("private/").size(), 8u);
}

}  // namespace
}  // namespace yafim::simfs
